package platform

import (
	"time"

	"janus/internal/obs"
)

// This file is the serving plane's observability glue: the pre-registered
// metric handles a run keeps when ExecutorConfig.Metrics is attached, and
// the small helpers the emit sites share. Every site in the engine is
// guarded by `st.tracer != nil` / `st.om != nil` (the replay window's
// nil-guard idiom), so with nothing attached no Event is constructed and
// nothing allocates — the zero-cost-when-off contract internal/obs
// documents, pinned by the bench guard.

// latencyBucketsMs are the fixed bounds of every latency histogram the
// run registers (per-tenant end-to-end, per tenant×function node
// latency), in milliseconds.
var latencyBucketsMs = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// LatencyBucketsMs returns a copy of the fixed latency-histogram bounds,
// for callers resolving the same histogram handles from a shared registry.
func LatencyBucketsMs() []int64 {
	return append([]int64(nil), latencyBucketsMs...)
}

// runObs holds the run-level registry handles: the park-depth gauge and
// the per-function pool-occupancy gauges the replay control ticks feed.
type runObs struct {
	reg       *obs.Registry
	parkDepth *obs.Gauge
	poolBusy  map[string]*obs.Gauge
	poolWarm  map[string]*obs.Gauge
}

func newRunObs(reg *obs.Registry) *runObs {
	return &runObs{
		reg:       reg,
		parkDepth: reg.Gauge("janus_park_depth"),
		poolBusy:  map[string]*obs.Gauge{},
		poolWarm:  map[string]*obs.Gauge{},
	}
}

// tenant registers (or resolves) one tenant's handle set.
func (ro *runObs) tenant(name string) *tenantObs {
	return &tenantObs{
		reg:         ro.reg,
		name:        name,
		decisions:   ro.reg.Counter("janus_decisions_total", "tenant", name),
		escalations: ro.reg.Counter("janus_escalations_total", "tenant", name),
		parked:      ro.reg.Counter("janus_parked_total", "tenant", name),
		completions: ro.reg.Counter("janus_requests_completed_total", "tenant", name),
		sloMisses:   ro.reg.Counter("janus_slo_misses_total", "tenant", name),
		e2e:         ro.reg.Histogram("janus_e2e_latency_ms", latencyBucketsMs, "tenant", name),
		nodeLatency: map[string]*obs.Histogram{},
	}
}

// observePools samples the per-function pool occupancy into gauges at a
// replay control tick (pool occupancy is a control-loop observable; runs
// without a control loop leave the gauges at zero). Handles register
// lazily on first sight of a function — one registry round-trip per
// function per run, then map lookups.
func (ro *runObs) observePools(stats []ReplayFunctionStats) {
	for i := range stats {
		fs := &stats[i]
		busy := ro.poolBusy[fs.Function]
		if busy == nil {
			busy = ro.reg.Gauge("janus_pool_busy", "function", fs.Function)
			ro.poolBusy[fs.Function] = busy
			ro.poolWarm[fs.Function] = ro.reg.Gauge("janus_pool_warm", "function", fs.Function)
		}
		busy.Set(int64(fs.Busy))
		ro.poolWarm[fs.Function].Set(int64(fs.Warm))
	}
}

// tenantObs is one tenant's pre-registered handle set, resolved once in
// prepareRun so the serving path pays plain integer ops (plus one map
// lookup for the per-function histogram).
type tenantObs struct {
	reg         *obs.Registry
	name        string
	decisions   *obs.Counter
	escalations *obs.Counter
	parked      *obs.Counter
	completions *obs.Counter
	sloMisses   *obs.Counter
	e2e         *obs.Histogram
	nodeLatency map[string]*obs.Histogram
}

// decision counts one allocation decision; a hints-table miss is the
// escalation the bilateral loop reacts to.
func (t *tenantObs) decision(hit bool) {
	t.decisions.Inc()
	if !hit {
		t.escalations.Inc()
	}
}

// observeNode records one executed node's latency into the tenant's
// per-function histogram, registering the handle on first use.
func (t *tenantObs) observeNode(fn string, latency time.Duration) {
	h := t.nodeLatency[fn]
	if h == nil {
		h = t.reg.Histogram("janus_node_latency_ms", latencyBucketsMs, "function", fn, "tenant", t.name)
		t.nodeLatency[fn] = h
	}
	h.Observe(latency.Milliseconds())
}

// reqEvent seeds an event with the causal-ID fields every
// request-lifecycle event carries.
func reqEvent(rs *reqState, at time.Duration, kind obs.Kind) obs.Event {
	return obs.Event{At: at, Kind: kind, Tenant: rs.tn.name, Request: rs.r.ID}
}

// observeComplete emits the completion (and SLO-miss) events and updates
// the tenant's completion metrics — the shared back half of the static
// and dynamic completion sites. Callers guard with
// `st.tracer != nil || rs.tn.om != nil`.
func (st *runState) observeComplete(rs *reqState, end time.Duration) {
	e2e, slo := rs.acc.E2E, rs.acc.SLO
	if st.tracer != nil {
		ev := reqEvent(rs, end, obs.KindComplete)
		ev.Value = int64(e2e)
		ev.Aux = int64(slo)
		ev.Flag = e2e <= slo
		st.tracer.Emit(ev)
		if e2e > slo {
			miss := reqEvent(rs, end, obs.KindSLOMiss)
			miss.Value = int64(e2e - slo)
			st.tracer.Emit(miss)
		}
	}
	if om := rs.tn.om; om != nil {
		om.completions.Inc()
		if e2e > slo {
			om.sloMisses.Inc()
		}
		om.e2e.Observe(e2e.Milliseconds())
	}
}
