// Package platform simulates the serverless provider's serving plane: it
// admits workflow requests, drives their node-by-node execution over the
// cluster substrate, and consults a pluggable Allocator for the millicore
// allocation of every decision group.
//
// Workflows are arbitrary DAGs. The engine is a per-node readiness
// scheduler: a node starts the moment all its predecessors have completed,
// and joins happen implicitly at nodes with in-degree > 1 — no stage
// barrier exists. Nodes sharing an identical predecessor set (a decision
// group, see workflow.DecisionGroups) become ready at the same instant and
// share one allocation decision, made against the critical-path remaining
// budget (SLO − elapsed); each member node acquires its own pod —
// independently subject to warm-pool hits, cold starts, and capacity
// parking — and runs concurrently on the simulated clock. Chains (every
// group one node) and series-parallel workflows (groups are exactly the
// fork-join stages) are special cases of the same engine, reproduced
// byte for byte.
//
// The Allocator interface is the single point where serving systems differ:
//
//   - early-binding baselines (GrandSLAM, GrandSLAM+, ORION) return fixed
//     per-group sizes decided at deployment;
//   - Janus's adapter derives the remaining time budget when a function
//     finishes and looks up the developer's condensed hints table;
//   - the clairvoyant Optimal oracle inspects the request's pre-sampled
//     draws.
//
// Requests carry pre-sampled randomness (working set, interference,
// jitter): every system faces the identical sequence of runtime conditions,
// which is the paired-comparison setup the paper's normalized results rely
// on.
//
// The plane is multi-tenant: RunMixed merges several workloads — each
// paired with its own Allocator — into one discrete-event run on one
// shared cluster, so tenants contend for warm pods, node millicores, and
// the co-location census exactly as the paper's provider-side deployment
// does. Run is the single-tenant special case.
package platform

import (
	"fmt"
	"time"

	"janus/internal/cluster"
	"janus/internal/interfere"
	"janus/internal/obs"
	"janus/internal/perfmodel"
	"janus/internal/rng"
	"janus/internal/simclock"
	"janus/internal/workflow"
)

// Request is one workflow execution with pre-sampled runtime conditions.
type Request struct {
	// ID is unique within a workload.
	ID int
	// Workflow is the application being served.
	Workflow *workflow.Workflow
	// Groups caches the workflow's decision-group partition in group
	// order: Groups[g] lists the member nodes that become ready together
	// and share one allocation decision. Chains have one node per group;
	// series-parallel workflows have one group per fork-join stage.
	Groups [][]workflow.Node
	// Draws holds one pre-sampled draw per node, Draws[g][b] matching
	// Groups[g][b].
	Draws [][]perfmodel.Draw
	// Arrival is the request's admission time.
	Arrival time.Duration
	// Batch is the batch size (the paper's "concurrency") the request's
	// function executions run with.
	Batch int
	// Dyn carries the pre-sampled dynamic resolutions (chosen branches,
	// map widths, retry outcomes and their extra draws) for requests of a
	// dynamic workflow; nil for static workflows. Resolving from the
	// request's seeded stream — not at scheduling time — is what keeps
	// dynamic runs byte-identical across parallelism and lets every
	// serving system face the same resolved shapes.
	Dyn *DynDraws
}

// DynDraws is a request's pre-sampled dynamic-shape resolution. Maps are
// keyed by step name; only annotated steps appear.
type DynDraws struct {
	// Choice maps a choice step to the index of its taken successor edge
	// (in edge-declaration order).
	Choice map[string]int
	// Width maps a map step to its resolved fan-out width in
	// [1, MaxWidth] — drawn "at the fork's readiness instant" in paper
	// terms; pre-sampling it is observationally identical because the
	// value is revealed to the allocator only at that instant.
	Width map[string]int
	// Attempts maps a map/retry step to the number of failed attempts
	// preceding each replica's success, indexed by replica (length =
	// resolved width; 1 for non-map retry steps). Zero for steps without
	// a retry spec.
	Attempts map[string][]int
	// NodeDraws maps a map/retry step to its per-execution draws,
	// indexed [replica][attempt]. Steps without map/retry specs use the
	// base Draws[g][b] entry.
	NodeDraws map[string][][]perfmodel.Draw
}

// Allocator decides the millicore allocation for a request's decision
// group. One decision is made per group, at the instant the group's
// predecessors have all completed; every member node runs at the decided
// size (a group with B members consumes B times the decision). For chain
// workflows the group index is the classic stage index.
type Allocator interface {
	// Name identifies the serving system in experiment output.
	Name() string
	// Allocate returns the allocation for decision group `group` of req,
	// given the critical-path remaining time budget until the SLO deadline
	// (SLO − elapsed; the group's hints table resolves the budget over its
	// descendant cone), plus whether the decision was a (hints-table) hit.
	// Systems without a hints table report true.
	Allocate(req *Request, group int, remaining time.Duration) (millicores int, hit bool)
}

// ShapeAwareAllocator is an Allocator that can exploit the parts of a
// dynamic workflow's shape already resolved at a decision instant. The
// serving plane calls AllocateShaped for every decision of a dynamic
// workflow, passing the resolved-shape key of the decision group ("w=3"
// when the group's map member resolved to width 3; "" when nothing in
// the group resolved). Allocators fall back to their conservative
// worst-case table when they have no variant for the key — plain
// Allocators never see shapes at all, which is exactly the static
// worst-case planning the trigger experiment compares against.
type ShapeAwareAllocator interface {
	Allocator
	AllocateShaped(req *Request, group int, shape string, remaining time.Duration) (millicores int, hit bool)
}

// Trigger is one external event on a replay run's virtual clock — a
// timer or stream event addressed to a tenant's request. With Step
// empty it starts the request: admission happens at At instead of the
// request's Arrival instant (the request must not also arrive on its
// own). With Step naming an await node it resumes the request: the
// await step's allocation decision and launch happen at its actual
// post-trigger readiness instant. A trigger that fires before its
// await step is ready latches, so early events are never lost.
type Trigger struct {
	// At is the fire instant on the virtual clock.
	At time.Duration
	// Tenant names the workload the trigger addresses ("" in a
	// single-tenant run).
	Tenant string
	// Request is the addressed request's ID within the tenant.
	Request int
	// Step is the await step to resume; empty means the trigger starts
	// the request.
	Step string
}

// StageTrace records one executed node of a request. The name is kept
// from the stage-indexed engine: Stage is the node's decision-group index
// and Branch its position within the group, which for chains and
// series-parallel workflows are exactly the old stage/branch coordinates.
type StageTrace struct {
	Function string
	// Step is the workflow node's step name — the node identity the
	// stage-indexed engine could not express.
	Step  string
	Stage int
	// Branch is the node's position within its decision group.
	Branch int
	// Node is the cluster node the pod ran on — the placement the
	// configured cluster policy chose.
	Node int
	// Replica and Attempt locate the execution within a dynamic node:
	// the map replica index and the 0-based retry attempt. Both are 0
	// for static workflows and for dynamic nodes without map/retry.
	Replica    int
	Attempt    int
	Millicores int
	Start      time.Duration
	End        time.Duration
	Startup    time.Duration
	Latency    time.Duration
	Cold       bool
	Hit        bool
}

// Trace records one served request.
type Trace struct {
	RequestID int
	// Tenant names the workload the request belongs to in a mixed run
	// (empty for single-workload Run).
	Tenant  string
	System  string
	Arrival time.Duration
	Done    time.Duration
	E2E     time.Duration
	SLO     time.Duration
	// Stages holds one entry per executed node, in completion order.
	Stages          []StageTrace
	TotalMillicores int
	// Decisions counts allocation decisions (one per decision group — a
	// fork group's members share one decision).
	Decisions int
	// Misses counts hints-table misses among those decisions.
	Misses int
	// Parked counts the request's pod acquisitions that queued on
	// exhausted cluster capacity — one per queueing episode, however many
	// pod releases the node slept through before fitting.
	Parked int
}

// SLOMet reports whether the request met its latency objective.
func (t *Trace) SLOMet() bool { return t.E2E <= t.SLO }

// WorkloadConfig drives request generation.
type WorkloadConfig struct {
	// Workflow to execute; any DAG is valid (chains and fork-joins
	// included).
	Workflow *workflow.Workflow
	// Functions resolves node function names to latency models.
	Functions map[string]*perfmodel.Function
	// N is the number of requests.
	N int
	// Batch is the batch size for all function executions.
	Batch int
	// ArrivalRatePerSec is the Poisson arrival rate; <= 0 means requests
	// arrive back to back at a fixed small spacing (closed-loop style).
	ArrivalRatePerSec float64
	// Arrivals, when non-empty, supplies explicit admission instants (one
	// request per entry, ascending) instead of the Poisson/closed-loop
	// stream — the seam a non-stationary replay schedule feeds. N, if
	// set, must match; draws are sampled exactly as for generated
	// arrivals, so the same request index faces the same runtime
	// conditions whichever way its admission instant was produced.
	Arrivals []time.Duration
	// Colocation samples the per-stage co-location count baked into each
	// draw (mirroring the contention mix the profiler saw).
	Colocation *interfere.CountSampler
	// Interference converts co-location counts into slowdowns.
	Interference *interfere.Model
	// StageCorrelation in [0, 1] couples runtime conditions across a
	// request's stages with a mixture copula: with this probability all of
	// a request's stages replay the same random stream (heavy inputs stay
	// heavy through the chain, contention persists); otherwise stages draw
	// independently. Production workflows are strongly correlated — a
	// large image yields many objects, a long passage yields a long
	// answer — which is what keeps end-to-end tail estimates honest.
	StageCorrelation float64
	// Seed roots the workload's random streams.
	Seed uint64
}

// GenerateWorkload materializes the request sequence with pre-sampled
// draws — one per node of every decision group, so forks face
// independently drawn runtime conditions across their members.
func GenerateWorkload(cfg WorkloadConfig) ([]*Request, error) {
	if cfg.Workflow == nil {
		return nil, fmt.Errorf("platform: workload needs a workflow")
	}
	var stages [][]workflow.Node
	for _, g := range cfg.Workflow.DecisionGroups() {
		stages = append(stages, g.Nodes)
	}
	if len(cfg.Arrivals) > 0 {
		if cfg.N != 0 && cfg.N != len(cfg.Arrivals) {
			return nil, fmt.Errorf("platform: N %d does not match %d explicit arrivals", cfg.N, len(cfg.Arrivals))
		}
		cfg.N = len(cfg.Arrivals)
		prev := time.Duration(-1)
		for i, at := range cfg.Arrivals {
			if at < 0 || at < prev {
				return nil, fmt.Errorf("platform: explicit arrival %d at %v is negative or out of order", i, at)
			}
			prev = at
		}
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("platform: workload needs N > 0, got %d", cfg.N)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.Colocation == nil {
		return nil, fmt.Errorf("platform: workload needs a co-location sampler")
	}
	if cfg.StageCorrelation < 0 || cfg.StageCorrelation > 1 {
		return nil, fmt.Errorf("platform: StageCorrelation %v outside [0, 1]", cfg.StageCorrelation)
	}
	fns := make([][]*perfmodel.Function, len(stages))
	for s, stage := range stages {
		fns[s] = make([]*perfmodel.Function, len(stage))
		for b, n := range stage {
			f, ok := cfg.Functions[n.Function]
			if !ok {
				return nil, fmt.Errorf("platform: workflow %s references unknown function %q", cfg.Workflow.Name(), n.Function)
			}
			if !f.SupportsBatch(cfg.Batch) {
				return nil, fmt.Errorf("platform: function %s does not support batch size %d", n.Function, cfg.Batch)
			}
			fns[s][b] = f
		}
	}
	root := rng.New(cfg.Seed).Split("workload/" + cfg.Workflow.Name())
	arrivals := root.Split("arrivals")
	reqs := make([]*Request, cfg.N)
	at := time.Duration(0)
	for i := 0; i < cfg.N; i++ {
		switch {
		case len(cfg.Arrivals) > 0:
			at = cfg.Arrivals[i]
		case cfg.ArrivalRatePerSec > 0:
			gap := arrivals.Exp(cfg.ArrivalRatePerSec)
			at += time.Duration(gap * float64(time.Second))
		default:
			at += 5 * time.Millisecond
		}
		stream := root.Split(fmt.Sprintf("req/%d", i))
		shared := stream.Float64() < cfg.StageCorrelation
		common := stream.Split("common")
		draws := make([][]perfmodel.Draw, len(stages))
		for s := range stages {
			draws[s] = make([]perfmodel.Draw, len(stages[s]))
			for b, f := range fns[s] {
				drawStream := stream
				if shared {
					// Every draw replays an identical stream: comonotonic
					// inputs, contention, and jitter along the workflow.
					drawStream = common.Split("replay")
				}
				coloc := cfg.Colocation.Sample(drawStream)
				draws[s][b] = f.NewDraw(drawStream, cfg.Batch, coloc, cfg.Interference)
			}
		}
		var dyn *DynDraws
		if cfg.Workflow.IsDynamic() {
			// Dynamic resolutions ride a dedicated child stream, so a
			// static workflow's draw sequence is untouched and adding an
			// annotation never perturbs the base draws above.
			dyn = sampleDynDraws(cfg, stream.Split("dyn"), common, shared)
		}
		reqs[i] = &Request{
			ID:       i,
			Workflow: cfg.Workflow,
			Groups:   stages,
			Draws:    draws,
			Arrival:  at,
			Batch:    cfg.Batch,
			Dyn:      dyn,
		}
	}
	return reqs, nil
}

// sampleDynDraws resolves one request's dynamic shape from its seeded
// stream: taken branch per choice step, fan-out width per map step,
// failed-attempt counts per retry step, and a draw for every extra
// execution (map replicas and retry attempts) the resolution implies.
func sampleDynDraws(cfg WorkloadConfig, dynStream, common *rng.Stream, shared bool) *DynDraws {
	w := cfg.Workflow
	dyn := &DynDraws{
		Choice:    map[string]int{},
		Width:     map[string]int{},
		Attempts:  map[string][]int{},
		NodeDraws: map[string][][]perfmodel.Draw{},
	}
	for _, step := range w.DynamicSteps() {
		d, _ := w.Dynamic(step)
		if d.Choice != nil {
			weights := d.Choice.Weights
			if weights == nil {
				weights = make([]float64, len(w.Successors(step)))
				for i := range weights {
					weights[i] = 1
				}
			}
			dyn.Choice[step] = dynStream.Choice(weights)
			continue
		}
		if d.Map == nil && d.Retry == nil {
			continue // await-only steps execute exactly once off the base draw
		}
		width := 1
		if d.Map != nil {
			decay := d.Map.Decay
			if decay == 0 {
				decay = workflow.DefaultMapDecay
			}
			width = dynStream.TruncGeometric(d.Map.MaxWidth, decay)
			dyn.Width[step] = width
		}
		attempts := make([]int, width)
		if d.Retry != nil {
			for r := range attempts {
				for attempts[r] < d.Retry.MaxRetries && dynStream.Float64() < d.Retry.FailureProb {
					attempts[r]++
				}
			}
		}
		dyn.Attempts[step] = attempts
		node, _ := w.Node(step)
		f := cfg.Functions[node.Function]
		nodeDraws := make([][]perfmodel.Draw, width)
		for r := range nodeDraws {
			nodeDraws[r] = make([]perfmodel.Draw, attempts[r]+1)
			for a := range nodeDraws[r] {
				drawStream := dynStream
				if shared {
					drawStream = common.Split("replay")
				}
				coloc := cfg.Colocation.Sample(drawStream)
				nodeDraws[r][a] = f.NewDraw(drawStream, cfg.Batch, coloc, cfg.Interference)
			}
		}
		dyn.NodeDraws[step] = nodeDraws
	}
	return dyn
}

// ExecutorConfig sizes the serving plane.
type ExecutorConfig struct {
	// Cluster configures the substrate.
	Cluster cluster.Config
	// WarmStartup is the pod specialization delay when a warm pod exists.
	WarmStartup time.Duration
	// ColdStartup is the pod creation delay when the pool is empty.
	ColdStartup time.Duration
	// DecisionOverhead models the allocator's per-stage decision cost
	// (the paper measures Janus's online adaptation at < 3 ms).
	DecisionOverhead time.Duration
	// LiveInterference recomputes each stage's slowdown from the live
	// cluster co-location census instead of the pre-sampled draw. The
	// clairvoyant Optimal allocator is only meaningful with this off.
	LiveInterference bool
	// Interference is required when LiveInterference is set.
	Interference *interfere.Model
	// Seed drives live-interference jitter.
	Seed uint64
	// Tracer, when non-nil, receives the run's typed event stream on the
	// virtual clock (package obs): admission, decisions, parks/wakes,
	// acquires/releases, cold starts, completions, SLO misses, and the
	// replay loop's pool-scale actions, every request-lifecycle event
	// carrying its causal Tenant+Request ID. Tracers only read engine
	// state — attaching one leaves the run byte-identical — and nil (the
	// default) reduces every emit site to one pointer check: no events,
	// no allocations.
	Tracer obs.Tracer
	// Metrics, when non-nil, is the registry the run pre-registers its
	// counter/gauge/histogram handles in (per-tenant decisions,
	// escalations, parks, completions, SLO misses, latency histograms;
	// park-depth and pool-occupancy gauges). Like Tracer, nil costs
	// nothing; attached, the hot path pays plain atomic integer ops.
	Metrics *obs.Registry
}

// DefaultExecutorConfig returns the configuration used by the paper-shaped
// experiments: warm pools, ~2 ms specialization, ~1 ms decision overhead.
func DefaultExecutorConfig() ExecutorConfig {
	return ExecutorConfig{
		Cluster:          cluster.DefaultConfig(),
		WarmStartup:      2 * time.Millisecond,
		ColdStartup:      300 * time.Millisecond,
		DecisionOverhead: time.Millisecond,
	}
}

// Executor serves workloads over a fresh simulated cluster per Run.
type Executor struct {
	cfg ExecutorConfig
	fns map[string]*perfmodel.Function
}

// NewExecutor validates the configuration and builds an executor.
func NewExecutor(cfg ExecutorConfig, fns map[string]*perfmodel.Function) (*Executor, error) {
	if cfg.WarmStartup < 0 || cfg.ColdStartup < 0 || cfg.DecisionOverhead < 0 {
		return nil, fmt.Errorf("platform: startup/overhead durations must be >= 0")
	}
	if cfg.LiveInterference && cfg.Interference == nil {
		return nil, fmt.Errorf("platform: LiveInterference requires an interference model")
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("platform: executor needs a function catalog")
	}
	return &Executor{cfg: cfg, fns: fns}, nil
}

// Clone returns an executor with the same configuration and function
// catalog for a concurrent driver to hand each worker goroutine. Today an
// Executor holds no per-run state — Run builds a fresh cluster and event
// engine per call, each strictly single-goroutine (Cluster documents the
// invariant) — so concurrent Runs on one Executor are already safe; Clone
// makes per-worker ownership explicit and keeps callers correct if the
// executor ever grows run-spanning state (pools, metrics). The catalog is
// shared: Function models are immutable after construction.
func (e *Executor) Clone() *Executor {
	return &Executor{cfg: e.cfg, fns: e.fns}
}

// TenantWorkload is one tenant's contribution to a mixed run: a request
// stream paired with the serving system that sizes it. In the paper's
// provider, many tenants' workflows share one substrate; pairing each
// stream with its own Allocator lets a mixed run serve Janus tenants next
// to early-binding ones on the same warm pools and node capacity.
type TenantWorkload struct {
	// Tenant names the workload; names must be unique within a mixed run
	// (empty is allowed only for a single-workload run).
	Tenant string
	// Requests is the tenant's pre-sampled request sequence. Request IDs
	// must be exactly 0..len(Requests)-1 (GenerateWorkload's numbering).
	Requests []*Request
	// Allocator is the tenant's serving system.
	Allocator Allocator
}

// MemoizableAllocator marks an allocator whose decisions are a pure
// function of (decision group, millisecond-truncated remaining budget)
// between epochs — the adapter's contract: hints.Table.Lookup floors the
// budget to whole milliseconds, and the bundle only changes when Replace
// opens a new epoch. The serving plane memoizes such allocators per
// tenant: repeated decisions in the same bucket skip the table search,
// and RecordCached replays the bookkeeping side effects (hit/miss
// counters, epoch windows, the observed budget range, the regeneration
// trigger) with the decision's true remaining budget, so every observable
// statistic — including the instants regeneration fires — is identical to
// the unmemoized run.
type MemoizableAllocator interface {
	Allocator
	// AllocEpoch identifies the allocator's current decision epoch; any
	// change invalidates previously returned decisions.
	AllocEpoch() int64
	// RecordCached replays the recording side effects of a decision served
	// from the memo: group and the true (untruncated) remaining budget,
	// the epoch the memoized decision was made under, and its hit outcome.
	RecordCached(group int, remaining time.Duration, epoch int64, hit bool)
}

// memoKey buckets allocation decisions: workflow and group identify the
// hints table, budgetMs the millisecond bucket Lookup floors to.
type memoKey struct {
	wf       *workflow.Workflow
	group    int
	budgetMs int64
}

type memoVal struct {
	mc  int
	hit bool
}

// tenantRun is one tenant's in-flight serving state.
type tenantRun struct {
	name   string
	alloc  Allocator
	traces []Trace
	done   int
	// memoable/memo/memoEpoch cache decisions of a MemoizableAllocator;
	// memo is nil for allocators without the contract. Single-goroutine,
	// like everything reached from the event loop.
	memoable  MemoizableAllocator
	memo      map[memoKey]memoVal
	memoEpoch int64
	// om holds the tenant's pre-registered metric handles; nil when no
	// registry is attached (obs.go).
	om *tenantObs
}

type runState struct {
	ex      *Executor
	engine  *simclock.Engine
	cluster *cluster.Cluster
	tenants []*tenantRun
	stream  *rng.Stream
	// plans caches the readiness structure per workflow: requests of one
	// workload share one plan.
	plans map[*workflow.Workflow]*dagPlan
	// done counts requests whose last node finished, across all tenants;
	// RunMixed compares it to the merged request count so starved requests
	// surface as an error instead of draining out as zero-value traces.
	done  int
	total int
	// park holds node acquisitions blocked on pod capacity, bucketed
	// per function under min-millicore segment trees (parkindex.go).
	// Capacity freed by any release can unblock any tenant's waiter (a
	// node hosts pods of every function), so the global arrival
	// sequence totally orders parks across functions — which is exactly
	// the cross-tenant contention a shared substrate implies. Parked
	// work is plain data, not closures, and wake() walks the index
	// instead of copying the queue: at fleet scale it used to run
	// thousands deep through a burst, an O(parked) scan per release.
	park parkIndex
	// thr caches per-slot acquire thresholds so a wake gates functions
	// on flat-array integer compares instead of recomputing per probe.
	// thrGen[slot] == cluster.Gen() marks thr[slot] as current: the
	// cluster bumps its generation on every mutation that can move any
	// threshold (and on nothing else — a failed Acquire mutates
	// nothing), so an unchanged generation proves the cache exact.
	thr    []int
	thrGen []uint64
	// retrySlot/retryPos name the park-index position of the entry a
	// wake dispatch took; a failed retry restores there, preserving its
	// original FIFO position.
	retrySlot int
	retryPos  int
	failed    error
	// reqStates holds every request's in-flight state in one arena,
	// initialized up front by prepareRun; admission closures index into it
	// instead of allocating per request.
	reqStates []reqState
	// window accumulates the per-function observations a replay run's
	// control ticks consume; nil outside RunReplay.
	window *replayWindow
	// tracer receives the run's event stream; nil (the common case)
	// disables every emit site at the cost of one pointer check.
	tracer obs.Tracer
	// om holds the run-level registry handles (park depth, pool
	// occupancy); nil when no registry is attached.
	om *runObs
}

// parkedNode is one pod acquisition waiting on cluster capacity: the
// already-decided allocation for one member node of a decision group.
// replica distinguishes map replicas of a dynamic node; it is always 0
// on the static path. The park index stores these records in
// per-function arrays at fleet depth, so the layout is deliberately
// narrow: int32 covers every field's range (group/member/slot are
// dense small indexes, replica < MaxMapWidth, millicores < 2^31) and
// keeps the record at 48 bytes — smaller than the pre-dynamic
// int-field layout even with the replica field added.
type parkedNode struct {
	rs      *reqState
	fn      string
	group   int32
	member  int32
	replica int32
	mc      int32
	slot    int32 // dense function index for wake's threshold cache
	hit     bool
}

// dagPlan is the precomputed readiness structure of one workflow DAG: how
// many predecessor nodes gate each decision group and which groups each
// node's completion advances. It is derived once per workflow and shared
// by every request (and tenant) serving it.
type dagPlan struct {
	groups [][]workflow.Node
	// predCount[g] is the number of distinct predecessor nodes of group g;
	// the group becomes ready when that many completions have arrived.
	predCount []int
	// dependents maps a step name to the groups (ascending) whose
	// predecessor set contains it.
	dependents map[string][]int
	// nodes is the total node count; a request completes when that many
	// nodes have finished (dead nodes — pruned by an upstream choice —
	// count as finished at the instant their death is determined).
	nodes int
	// dyn is the dynamic-shape overlay (liveness edges, annotations,
	// choice targets); nil for static workflows, whose serving path is
	// untouched by it.
	dyn *dynPlan
}

func newDAGPlan(w *workflow.Workflow) *dagPlan {
	decision := w.DecisionGroups()
	p := &dagPlan{
		groups:     make([][]workflow.Node, len(decision)),
		predCount:  make([]int, len(decision)),
		dependents: make(map[string][]int),
	}
	for g, grp := range decision {
		p.groups[g] = grp.Nodes
		p.predCount[g] = len(grp.Preds)
		p.nodes += len(grp.Nodes)
		for _, pred := range grp.Preds {
			p.dependents[pred] = append(p.dependents[pred], g)
		}
	}
	if w.IsDynamic() {
		p.dyn = newDynPlan(w, p)
	}
	return p
}

func (st *runState) planFor(w *workflow.Workflow) *dagPlan {
	p, ok := st.plans[w]
	if !ok {
		p = newDAGPlan(w)
		st.plans[w] = p
	}
	return p
}

// reqState is one in-flight request: its trace accumulator plus the
// per-group readiness countdowns. States live in the run's arena; the
// trace accumulator is a value (copied out on completion) and pending /
// acc.Stages are arena sub-slices sized exactly by the request's plan, so
// serving a request allocates nothing beyond its scheduled events.
type reqState struct {
	tn   *tenantRun
	r    *Request
	plan *dagPlan
	acc  Trace
	// pending[g] counts the group's unfinished predecessor nodes; the
	// group starts when it reaches zero. A dead node (pruned by an
	// upstream choice) counts as finished the instant its death is
	// determined.
	pending []int
	// remaining counts unfinished nodes; the request completes at zero.
	remaining int
	// arrival is the instant the SLO clock started: the request's
	// Arrival, or the fire instant of its start trigger.
	arrival time.Duration
	// external marks a request admitted by a start trigger rather than
	// its own Arrival instant.
	external bool
	// dyn holds the per-request dynamic-shape state (liveness, replica
	// joins, retry counters, await latches); nil for static plans.
	dyn *dynReqState
}

// Run serves the requests with the given allocator and returns one trace
// per request, ordered by request ID. It is the single-tenant special case
// of RunMixed: one workload owning the whole cluster.
func (e *Executor) Run(reqs []*Request, alloc Allocator) ([]Trace, error) {
	out, err := e.RunMixed([]TenantWorkload{{Requests: reqs, Allocator: alloc}})
	if err != nil {
		return nil, err
	}
	return out[""], nil
}

// RunMixed merges the arrival streams of several tenants' workloads into
// one discrete-event run on one shared cluster and returns each tenant's
// traces (ordered by request ID) keyed by tenant name. Tenants genuinely
// contend: warm pools, node millicores, the FIFO capacity queue, and the
// co-location census behind the interference model are all shared, so a
// burst from one tenant inflates another's cold starts, parking, and
// interference — the multi-tenant serving condition that motivates
// bilateral adaptation.
//
// Requests that never finish — their allocation can never be placed on any
// node, so their continuations stay parked after the event queue drains —
// fail the run explicitly: a zero-value trace (E2E 0, zero millicores)
// would silently flatter every violation-rate and cost metric downstream.
func (e *Executor) RunMixed(tenants []TenantWorkload) (map[string][]Trace, error) {
	st, err := e.prepareRun(tenants, nil)
	if err != nil {
		return nil, err
	}
	st.engine.Run()
	return st.collect()
}

// prepareRun validates the tenant workloads, builds a fresh cluster and
// event engine, deploys the union of every tenant's functions, and
// schedules all admissions — the shared front half of RunMixed and
// RunReplay. The caller decides what else rides on the engine before
// draining it. triggers is the replay run's external-event queue (nil
// outside RunReplay); workflows with await steps are only servable
// when every await is covered by a trigger.
func (e *Executor) prepareRun(tenants []TenantWorkload, triggers []Trigger) (*runState, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("platform: no tenant workloads")
	}
	seen := make(map[string]bool, len(tenants))
	total := 0
	for i, tw := range tenants {
		if tw.Tenant == "" && len(tenants) > 1 {
			return nil, fmt.Errorf("platform: tenant %d has no name (names are required in a mixed run)", i)
		}
		if seen[tw.Tenant] {
			return nil, fmt.Errorf("platform: duplicate tenant %q", tw.Tenant)
		}
		seen[tw.Tenant] = true
		if len(tw.Requests) == 0 {
			return nil, fmt.Errorf("platform: tenant %q has no requests", tw.Tenant)
		}
		if tw.Allocator == nil {
			return nil, fmt.Errorf("platform: tenant %q has a nil allocator", tw.Tenant)
		}
		ids := make([]bool, len(tw.Requests))
		for _, r := range tw.Requests {
			if r.ID < 0 || r.ID >= len(tw.Requests) || ids[r.ID] {
				return nil, fmt.Errorf("platform: tenant %q request IDs must be unique in [0, %d), got %d",
					tw.Tenant, len(tw.Requests), r.ID)
			}
			ids[r.ID] = true
		}
		total += len(tw.Requests)
	}
	cl, err := cluster.New(e.cfg.Cluster)
	if err != nil {
		return nil, err
	}
	st := &runState{
		ex:      e,
		engine:  simclock.New(),
		cluster: cl,
		stream:  rng.New(e.cfg.Seed).Split("executor"),
		plans:   make(map[*workflow.Workflow]*dagPlan),
		total:   total,
		tracer:  e.cfg.Tracer,
	}
	if e.cfg.Metrics != nil {
		st.om = newRunObs(e.cfg.Metrics)
	}
	st.park.init()
	// Validate every request against the plan the engine will actually
	// execute — the workflow-derived decision groups, not the request's
	// cached copy — and deploy the union of every tenant's functions
	// once: tenants running the same function share its warm pool and
	// co-location census. The same pass sizes the run's arenas: the total
	// readiness countdowns and executed-node traces across all requests.
	deployed := map[string]bool{}
	totalPending, totalNodes := 0, 0
	for _, tw := range tenants {
		for _, r := range tw.Requests {
			plan := st.planFor(r.Workflow)
			totalPending += len(plan.predCount)
			totalNodes += plan.nodes
			if len(r.Groups) != len(plan.groups) || len(r.Draws) != len(plan.groups) {
				return nil, fmt.Errorf("platform: tenant %q request %d carries %d groups / %d draw rows, workflow %s has %d decision groups",
					tw.Tenant, r.ID, len(r.Groups), len(r.Draws), r.Workflow.Name(), len(plan.groups))
			}
			for g, group := range plan.groups {
				if len(r.Groups[g]) != len(group) || len(r.Draws[g]) != len(group) {
					return nil, fmt.Errorf("platform: tenant %q request %d group %d carries %d members / %d draws, workflow %s has %d",
						tw.Tenant, r.ID, g, len(r.Groups[g]), len(r.Draws[g]), r.Workflow.Name(), len(group))
				}
				for _, n := range group {
					if _, ok := e.fns[n.Function]; !ok {
						return nil, fmt.Errorf("platform: tenant %q request %d references unknown function %q", tw.Tenant, r.ID, n.Function)
					}
					if !deployed[n.Function] {
						if err := cl.Deploy(n.Function); err != nil {
							return nil, err
						}
						deployed[n.Function] = true
					}
				}
			}
			if plan.dyn != nil {
				if err := plan.dyn.validateRequest(tw.Tenant, r); err != nil {
					return nil, err
				}
			}
		}
	}
	// Admissions are scheduled tenant by tenant in input order; the event
	// engine merges them by arrival time, breaking ties by scheduling
	// sequence, so the interleaving is a pure function of the inputs and
	// mixed runs replay byte for byte. Every request's in-flight state is
	// fully initialized here out of three arena allocations (states,
	// countdowns, stage traces); admission merely arms the root groups.
	st.reqStates = make([]reqState, total)
	pendArena := make([]int, totalPending)
	stageArena := make([]StageTrace, totalNodes)
	var byTenant map[string]map[int]*reqState
	if len(triggers) > 0 {
		byTenant = make(map[string]map[int]*reqState, len(tenants))
	}
	ri, po, so := 0, 0, 0
	for _, tw := range tenants {
		tn := &tenantRun{name: tw.Tenant, alloc: tw.Allocator, traces: make([]Trace, len(tw.Requests))}
		if st.om != nil {
			tn.om = st.om.tenant(tw.Tenant)
		}
		if m, ok := tw.Allocator.(MemoizableAllocator); ok {
			tn.memoable = m
			tn.memo = make(map[memoKey]memoVal)
			tn.memoEpoch = m.AllocEpoch()
		}
		st.tenants = append(st.tenants, tn)
		var byID map[int]*reqState
		if byTenant != nil {
			byID = make(map[int]*reqState, len(tw.Requests))
			byTenant[tw.Tenant] = byID
		}
		for _, r := range tw.Requests {
			plan := st.planFor(r.Workflow)
			rs := &st.reqStates[ri]
			ri++
			rs.tn, rs.r, rs.plan = tn, r, plan
			np := len(plan.predCount)
			rs.pending = pendArena[po : po+np : po+np]
			po += np
			copy(rs.pending, plan.predCount)
			rs.remaining = plan.nodes
			rs.arrival = r.Arrival
			if plan.dyn != nil {
				rs.dyn = newDynReqState(plan.dyn)
			}
			rs.acc = Trace{
				RequestID: r.ID,
				Tenant:    tn.name,
				System:    tn.alloc.Name(),
				Arrival:   r.Arrival,
				SLO:       r.Workflow.SLO(),
				Stages:    stageArena[so : so : so+plan.nodes],
			}
			so += plan.nodes
			if byID != nil {
				byID[r.ID] = rs
			}
		}
	}
	if err := st.armTriggers(triggers, byTenant); err != nil {
		return nil, err
	}
	// Every await step must have a trigger addressed to it, or its
	// request could never finish: awaits resume only via the replay
	// engine's external-event queue.
	for i := range st.reqStates {
		rs := &st.reqStates[i]
		if rs.dyn == nil {
			continue
		}
		for _, flat := range rs.plan.dyn.awaits {
			if !rs.dyn.armed[flat] {
				return nil, fmt.Errorf("platform: await step %q of tenant %q request %d has no trigger; awaits resume only through ReplayConfig.Triggers",
					rs.plan.dyn.steps[flat], rs.tn.name, rs.r.ID)
			}
		}
	}
	for i := range st.reqStates {
		rs := &st.reqStates[i]
		if rs.external {
			continue // admitted by its start trigger instead
		}
		st.engine.ScheduleAt(rs.r.Arrival, func(time.Duration) { st.startRequest(rs) })
	}
	return st, nil
}

// armTriggers validates the external-event queue against the prepared
// request states and schedules each trigger on the virtual clock. Start
// triggers take over their request's admission; resume triggers latch
// into the addressed await step. Trigger events are scheduled after all
// admissions in queue order, so runs replay byte for byte.
func (st *runState) armTriggers(triggers []Trigger, byTenant map[string]map[int]*reqState) error {
	for i, tr := range triggers {
		if tr.At < 0 {
			return fmt.Errorf("platform: trigger %d fires at negative instant %v", i, tr.At)
		}
		byID, ok := byTenant[tr.Tenant]
		if !ok {
			return fmt.Errorf("platform: trigger %d addresses unknown tenant %q", i, tr.Tenant)
		}
		rs, ok := byID[tr.Request]
		if !ok {
			return fmt.Errorf("platform: trigger %d addresses unknown request %d of tenant %q", i, tr.Request, tr.Tenant)
		}
		if tr.Step == "" {
			if rs.external {
				return fmt.Errorf("platform: tenant %q request %d has more than one start trigger", tr.Tenant, tr.Request)
			}
			rs.external = true
			st.engine.ScheduleAt(tr.At, func(now time.Duration) { st.startRequestAt(rs, now) })
			continue
		}
		if rs.plan.dyn == nil {
			return fmt.Errorf("platform: trigger %d resumes step %q of static workflow %s", i, tr.Step, rs.r.Workflow.Name())
		}
		flat, ok := rs.plan.dyn.flat[tr.Step]
		if !ok || !rs.plan.dyn.isAwait(flat) {
			return fmt.Errorf("platform: trigger %d resumes step %q of workflow %s, which is not an await step", i, tr.Step, rs.r.Workflow.Name())
		}
		rs.dyn.armed[flat] = true
		st.engine.ScheduleAt(tr.At, func(now time.Duration) { st.fireTrigger(rs, flat, now) })
	}
	return nil
}

// startRequestAt admits a trigger-started request: its SLO clock starts
// at the fire instant, not the (unused) Arrival it was generated with.
func (st *runState) startRequestAt(rs *reqState, now time.Duration) {
	rs.arrival = now
	rs.acc.Arrival = now
	if st.tracer != nil {
		ev := reqEvent(rs, now, obs.KindTrigger)
		ev.Reason = "start"
		st.tracer.Emit(ev)
	}
	st.startRequest(rs)
}

// collect checks the drained run for failures and starvation and splits
// the traces per tenant.
func (st *runState) collect() (map[string][]Trace, error) {
	total := st.total
	if st.failed != nil {
		return nil, st.failed
	}
	if st.done != total {
		starved := ""
		for _, tn := range st.tenants {
			if missing := len(tn.traces) - tn.done; missing > 0 {
				starved += fmt.Sprintf(" %s:%d", tn.name, missing)
			}
		}
		return nil, fmt.Errorf("platform: %d of %d requests never completed (allocation cannot be placed on any node; %d node continuation(s) still parked; per tenant:%s)",
			total-st.done, total, st.park.live, starved)
	}
	out := make(map[string][]Trace, len(st.tenants))
	for _, tn := range st.tenants {
		out[tn.name] = tn.traces
	}
	return out, nil
}

// startRequest admits one request whose state prepareRun already armed:
// every group with no predecessors (the root group) starts immediately.
func (st *runState) startRequest(rs *reqState) {
	if st.failed != nil {
		return
	}
	if st.tracer != nil {
		ev := reqEvent(rs, st.engine.Now(), obs.KindAdmit)
		ev.Value = int64(rs.r.Workflow.SLO())
		st.tracer.Emit(ev)
	}
	for g := range rs.pending {
		if rs.pending[g] == 0 {
			st.startGroup(rs, g)
			if st.failed != nil {
				return
			}
		}
	}
}

// startGroup makes the group's allocation decision — exactly once, even if
// member nodes later stall on capacity — and launches every member. The
// budget handed to the allocator is the critical-path remaining budget
// SLO − elapsed: the group's descendant cone (every path from here to the
// workflow's sinks) must complete within it, and the group's hints table
// splits it over the cone's critical path, so no further scaling is
// applied at decision time.
func (st *runState) startGroup(rs *reqState, group int) {
	if st.failed != nil {
		return
	}
	if rs.dyn != nil {
		st.startGroupDyn(rs, group)
		return
	}
	now := st.engine.Now()
	remaining := rs.r.Workflow.SLO() - (now - rs.arrival)
	mc, hit := st.allocate(rs, group, remaining)
	if mc <= 0 {
		st.fail(fmt.Errorf("platform: allocator %s returned non-positive allocation %d", rs.tn.alloc.Name(), mc))
		return
	}
	rs.acc.Decisions++
	if !hit {
		rs.acc.Misses++
	}
	if st.tracer != nil {
		ev := reqEvent(rs, now, obs.KindDecision)
		ev.Group = group
		ev.Value = int64(mc)
		ev.Aux = int64(remaining)
		ev.Flag = hit
		st.tracer.Emit(ev)
	}
	if rs.tn.om != nil {
		rs.tn.om.decision(hit)
	}
	for b := range rs.plan.groups[group] {
		st.startNode(rs, group, b, mc, hit, false)
		if st.failed != nil {
			return
		}
	}
}

// allocate makes one decision, serving it from the tenant's memo when the
// allocator declared itself memoizable. Cache hits replay the allocator's
// recording side effects through RecordCached with the true remaining
// budget, so stats, epoch windows, and regeneration instants match the
// unmemoized run exactly; the memo is cleared whenever the allocator's
// epoch moves (a hot-swapped bundle decides differently).
func (st *runState) allocate(rs *reqState, group int, remaining time.Duration) (int, bool) {
	tn := rs.tn
	if tn.memo == nil {
		return tn.alloc.Allocate(rs.r, group, remaining)
	}
	ep := tn.memoable.AllocEpoch()
	if ep != tn.memoEpoch {
		clear(tn.memo)
		tn.memoEpoch = ep
	}
	k := memoKey{wf: rs.r.Workflow, group: group, budgetMs: int64(remaining / time.Millisecond)}
	if v, ok := tn.memo[k]; ok {
		tn.memoable.RecordCached(group, remaining, ep, v.hit)
		return v.mc, v.hit
	}
	mc, hit := tn.alloc.Allocate(rs.r, group, remaining)
	tn.memo[k] = memoVal{mc: mc, hit: hit}
	return mc, hit
}

// startNode acquires a pod for one node, parking the acquisition (not the
// decision — that is already made and paid for) when the cluster lacks
// capacity. retried marks a wake()-driven re-attempt: a node counts one
// Parked queueing episode no matter how many releases it sleeps through
// before fitting.
func (st *runState) startNode(rs *reqState, group, member, mc int, hit, retried bool) {
	if st.failed != nil {
		return
	}
	fn := rs.plan.groups[group][member].Function
	pod, cold, err := st.cluster.Acquire(fn, mc)
	if err != nil {
		// No capacity right now: park the continuation until a release.
		// Each node parks independently — its group siblings keep running.
		if retried {
			// A woken entry that still cannot fit re-parks at its
			// original position, keeping its place in FIFO order.
			st.park.restore(st.retrySlot, st.retryPos)
			if st.om != nil {
				st.om.parkDepth.Set(int64(st.park.live))
			}
			return
		}
		rs.acc.Parked++
		if st.window != nil {
			st.window.queued[fn]++
		}
		st.park.park(st.slotOf(fn), parkedNode{rs: rs, group: int32(group), member: int32(member), mc: int32(mc), hit: hit, fn: fn})
		if st.tracer != nil {
			ev := reqEvent(rs, st.engine.Now(), obs.KindPark)
			ev.Group, ev.Member = group, member
			ev.Function = fn
			ev.Value = int64(mc)
			st.tracer.Emit(ev)
		}
		if rs.tn.om != nil {
			rs.tn.om.parked.Inc()
		}
		if st.om != nil {
			st.om.parkDepth.Set(int64(st.park.live))
		}
		return
	}
	if st.window != nil {
		if retried {
			st.window.queued[fn]--
		}
		st.window.acquires[fn]++
		if cold {
			st.window.cold[fn]++
		}
	}
	if st.tracer != nil {
		now := st.engine.Now()
		ev := reqEvent(rs, now, obs.KindAcquire)
		ev.Group, ev.Member = group, member
		ev.Function = fn
		ev.Value = int64(pod.Millicores())
		ev.Aux = int64(pod.NodeID)
		ev.Flag = cold
		st.tracer.Emit(ev)
		if cold {
			cs := reqEvent(rs, now, obs.KindColdStart)
			cs.Group, cs.Member = group, member
			cs.Function = fn
			cs.Value = int64(st.ex.cfg.ColdStartup)
			st.tracer.Emit(cs)
		}
	}
	st.execute(rs, group, member, pod, cold, hit)
}

func (st *runState) execute(rs *reqState, group, member int, pod *cluster.Pod, cold, hit bool) {
	node := rs.plan.groups[group][member]
	fn := st.ex.fns[node.Function]
	draw := rs.r.Draws[group][member]
	if st.ex.cfg.LiveInterference {
		census := st.cluster.Colocated(pod)
		draw.Slowdown = st.ex.cfg.Interference.Sample(fn.Dimension(), census, st.stream)
	}
	startup := st.ex.cfg.WarmStartup
	if cold {
		startup = st.ex.cfg.ColdStartup
	}
	latency := fn.Latency(draw, pod.Millicores())
	// The group's decision gates every member launch, so each node span
	// carries the decision overhead alongside its own startup and latency.
	span := st.ex.cfg.DecisionOverhead + startup + latency
	start := st.engine.Now()
	st.engine.Schedule(span, func(end time.Duration) {
		if st.failed != nil {
			return
		}
		rs.acc.Stages = append(rs.acc.Stages, StageTrace{
			Function:   node.Function,
			Step:       node.Name,
			Stage:      group,
			Branch:     member,
			Node:       pod.NodeID,
			Millicores: pod.Millicores(),
			Start:      start,
			End:        end,
			Startup:    startup,
			Latency:    latency,
			Cold:       cold,
			Hit:        hit,
		})
		rs.acc.TotalMillicores += pod.Millicores()
		if st.tracer != nil {
			ev := reqEvent(rs, end, obs.KindRelease)
			ev.Group, ev.Member = group, member
			ev.Function = node.Function
			ev.Value = int64(pod.Millicores())
			ev.Aux = int64(pod.NodeID)
			st.tracer.Emit(ev)
		}
		if rs.tn.om != nil {
			rs.tn.om.observeNode(node.Function, latency)
		}
		if err := st.cluster.Release(pod); err != nil {
			st.fail(err)
			return
		}
		st.wake()
		st.nodeDone(rs, node.Name, end)
	})
}

// nodeDone advances the readiness countdowns after a node completes: any
// dependent group whose predecessor count reaches zero starts (the
// implicit join at in-degree > 1 nodes), and the request finishes when its
// last node does.
func (st *runState) nodeDone(rs *reqState, step string, end time.Duration) {
	rs.remaining--
	if rs.remaining == 0 {
		rs.acc.Done = end
		rs.acc.E2E = end - rs.arrival
		rs.tn.traces[rs.r.ID] = rs.acc
		rs.tn.done++
		st.done++
		if st.tracer != nil || rs.tn.om != nil {
			st.observeComplete(rs, end)
		}
		return
	}
	for _, dg := range rs.plan.dependents[step] {
		rs.pending[dg]--
		if rs.pending[dg] == 0 {
			st.startGroup(rs, dg)
			if st.failed != nil {
				return
			}
		}
	}
}

// slotOf returns fn's dense park slot, assigning one on first park and
// growing the threshold cache in lockstep with the index's queues.
func (st *runState) slotOf(fn string) int {
	s := st.park.slotOf(fn)
	for len(st.thr) < len(st.park.queues) {
		st.thr = append(st.thr, 0)
		st.thrGen = append(st.thrGen, 0)
	}
	return s
}

// threshold reports slot's current acquire threshold, recomputing only
// when the cluster's mutation generation has moved since the cached
// read. Generations start at 1 (Deploy bumps), so the zero cache is
// always stale.
func (st *runState) threshold(slot int) int {
	if g := st.cluster.Gen(); st.thrGen[slot] != g {
		st.thr[slot] = st.cluster.AcquireThreshold(st.park.fns[slot])
		st.thrGen[slot] = g
	}
	return st.thr[slot]
}

// wake re-admits parked acquisitions in FIFO order; those that still
// cannot acquire a pod re-park in place. It emulates the seed forward
// scan exactly without visiting skipped entries: the scan the index
// replaces walked a snapshot in arrival order, gating each entry on a
// per-function threshold cached between wakes — equivalently,
// repeatedly admit the smallest-sequence entry at or after the cursor
// that fits its function's current threshold, then advance the cursor
// past it. The two are identical because between admissions thresholds
// are constant (a failed probe mutates nothing), neither form revisits
// entries behind the cursor within one scan, and entries parked after
// the scan started (sequence >= limit) stay invisible, exactly like
// the seed's snapshot. wake never re-enters itself: acquisitions
// either succeed (scheduling a completion event) or re-park — neither
// releases a pod synchronously.
//
// A retry is attempted only when the cluster's AcquireThreshold says it
// would succeed — the predicate is exact, so an entry failing it
// re-parks with precisely the state evolution of a failed Acquire
// (none). A saturated release therefore costs one integer compare per
// parked *function* (queue min vs threshold), not per entry; an
// admission costs O(functions · log parked) index steps.
func (st *runState) wake() {
	if st.park.live == 0 {
		return
	}
	cursor, limit := uint64(0), st.park.seq
	for {
		slot, pos, seq, ok := st.park.next(cursor, limit, st)
		if !ok {
			return
		}
		p := st.park.take(slot, pos)
		cursor = seq + 1
		st.retrySlot, st.retryPos = slot, pos
		if st.tracer != nil {
			ev := reqEvent(p.rs, st.engine.Now(), obs.KindWake)
			ev.Group, ev.Member, ev.Replica = int(p.group), int(p.member), int(p.replica)
			ev.Function = p.fn
			ev.Value = int64(p.mc)
			st.tracer.Emit(ev)
		}
		if st.om != nil {
			st.om.parkDepth.Set(int64(st.park.live))
		}
		if p.rs.dyn != nil {
			st.startNodeDyn(p.rs, int(p.group), int(p.member), int(p.replica), int(p.mc), p.hit, true)
		} else {
			st.startNode(p.rs, int(p.group), int(p.member), int(p.mc), p.hit, true)
		}
		if st.failed != nil {
			return
		}
	}
}

func (st *runState) fail(err error) {
	if st.failed == nil {
		st.failed = err
		st.engine.Stop()
	}
}
