// Package platform simulates the serverless provider's serving plane: it
// admits workflow requests, drives their stage-by-stage execution over the
// cluster substrate, and consults a pluggable Allocator for the millicore
// allocation of every stage.
//
// Workflows may be chains or general fork-join (series-parallel) DAGs.
// A fan-out stage acquires one pod per branch — each branch independently
// subject to warm-pool hits, cold starts, and capacity parking — runs the
// branches concurrently on the simulated clock, and joins when the slowest
// branch releases its pod. The stage's allocation decision is made once and
// applies to every branch.
//
// The Allocator interface is the single point where serving systems differ:
//
//   - early-binding baselines (GrandSLAM, GrandSLAM+, ORION) return fixed
//     per-stage sizes decided at deployment;
//   - Janus's adapter derives the remaining time budget when a function
//     finishes and looks up the developer's condensed hints table;
//   - the clairvoyant Optimal oracle inspects the request's pre-sampled
//     draws.
//
// Requests carry pre-sampled randomness (working set, interference,
// jitter): every system faces the identical sequence of runtime conditions,
// which is the paired-comparison setup the paper's normalized results rely
// on.
//
// The plane is multi-tenant: RunMixed merges several workloads — each
// paired with its own Allocator — into one discrete-event run on one
// shared cluster, so tenants contend for warm pods, node millicores, and
// the co-location census exactly as the paper's provider-side deployment
// does. Run is the single-tenant special case.
package platform

import (
	"fmt"
	"time"

	"janus/internal/cluster"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/rng"
	"janus/internal/simclock"
	"janus/internal/workflow"
)

// Request is one workflow execution with pre-sampled runtime conditions.
type Request struct {
	// ID is unique within a workload.
	ID int
	// Workflow is the application being served.
	Workflow *workflow.Workflow
	// Stages caches the workflow's fork-join decomposition in execution
	// order: Stages[s] lists the branch nodes running concurrently in
	// stage s. Chain workflows have exactly one branch per stage.
	Stages [][]workflow.Node
	// Draws holds one pre-sampled draw per branch, Draws[s][b] matching
	// Stages[s][b].
	Draws [][]perfmodel.Draw
	// Arrival is the request's admission time.
	Arrival time.Duration
	// Batch is the batch size (the paper's "concurrency") the request's
	// function executions run with.
	Batch int
}

// Allocator decides the millicore allocation for a request stage. One
// decision is made per stage; a fan-out stage runs every branch at the
// decided size (a stage with B branches consumes B times the decision).
type Allocator interface {
	// Name identifies the serving system in experiment output.
	Name() string
	// Allocate returns the allocation for stage `stage` of req, given the
	// remaining time budget until the SLO deadline, plus whether the
	// decision was a (hints-table) hit. Systems without a hints table
	// report true.
	Allocate(req *Request, stage int, remaining time.Duration) (millicores int, hit bool)
}

// StageTrace records one executed branch of a stage.
type StageTrace struct {
	Function string
	Stage    int
	Branch   int
	// Node is the cluster node the branch's pod ran on — the placement
	// the configured cluster policy chose.
	Node       int
	Millicores int
	Start      time.Duration
	End        time.Duration
	Startup    time.Duration
	Latency    time.Duration
	Cold       bool
	Hit        bool
}

// Trace records one served request.
type Trace struct {
	RequestID int
	// Tenant names the workload the request belongs to in a mixed run
	// (empty for single-workload Run).
	Tenant  string
	System  string
	Arrival time.Duration
	Done      time.Duration
	E2E       time.Duration
	SLO       time.Duration
	// Stages holds one entry per executed branch, in completion order.
	Stages          []StageTrace
	TotalMillicores int
	// Decisions counts allocation decisions (one per stage — a fan-out
	// stage's branches share one decision).
	Decisions int
	// Misses counts hints-table misses among those decisions.
	Misses int
	// Parked counts the request's branch acquisitions that queued on
	// exhausted cluster capacity — one per queueing episode, however many
	// pod releases the branch slept through before fitting.
	Parked int
}

// SLOMet reports whether the request met its latency objective.
func (t *Trace) SLOMet() bool { return t.E2E <= t.SLO }

// WorkloadConfig drives request generation.
type WorkloadConfig struct {
	// Workflow to execute; must decompose into fork-join stages (chains
	// included — see workflow.Workflow.SeriesParallel).
	Workflow *workflow.Workflow
	// Functions resolves node function names to latency models.
	Functions map[string]*perfmodel.Function
	// N is the number of requests.
	N int
	// Batch is the batch size for all function executions.
	Batch int
	// ArrivalRatePerSec is the Poisson arrival rate; <= 0 means requests
	// arrive back to back at a fixed small spacing (closed-loop style).
	ArrivalRatePerSec float64
	// Colocation samples the per-stage co-location count baked into each
	// draw (mirroring the contention mix the profiler saw).
	Colocation *interfere.CountSampler
	// Interference converts co-location counts into slowdowns.
	Interference *interfere.Model
	// StageCorrelation in [0, 1] couples runtime conditions across a
	// request's stages with a mixture copula: with this probability all of
	// a request's stages replay the same random stream (heavy inputs stay
	// heavy through the chain, contention persists); otherwise stages draw
	// independently. Production workflows are strongly correlated — a
	// large image yields many objects, a long passage yields a long
	// answer — which is what keeps end-to-end tail estimates honest.
	StageCorrelation float64
	// Seed roots the workload's random streams.
	Seed uint64
}

// GenerateWorkload materializes the request sequence with pre-sampled
// draws — one per branch of every stage, so fan-out stages face
// independently drawn runtime conditions across their branches.
func GenerateWorkload(cfg WorkloadConfig) ([]*Request, error) {
	if cfg.Workflow == nil {
		return nil, fmt.Errorf("platform: workload needs a workflow")
	}
	stages, err := cfg.Workflow.SeriesParallel()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("platform: workload needs N > 0, got %d", cfg.N)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.Colocation == nil {
		return nil, fmt.Errorf("platform: workload needs a co-location sampler")
	}
	if cfg.StageCorrelation < 0 || cfg.StageCorrelation > 1 {
		return nil, fmt.Errorf("platform: StageCorrelation %v outside [0, 1]", cfg.StageCorrelation)
	}
	fns := make([][]*perfmodel.Function, len(stages))
	for s, stage := range stages {
		fns[s] = make([]*perfmodel.Function, len(stage))
		for b, n := range stage {
			f, ok := cfg.Functions[n.Function]
			if !ok {
				return nil, fmt.Errorf("platform: workflow %s references unknown function %q", cfg.Workflow.Name(), n.Function)
			}
			if !f.SupportsBatch(cfg.Batch) {
				return nil, fmt.Errorf("platform: function %s does not support batch size %d", n.Function, cfg.Batch)
			}
			fns[s][b] = f
		}
	}
	root := rng.New(cfg.Seed).Split("workload/" + cfg.Workflow.Name())
	arrivals := root.Split("arrivals")
	reqs := make([]*Request, cfg.N)
	at := time.Duration(0)
	for i := 0; i < cfg.N; i++ {
		if cfg.ArrivalRatePerSec > 0 {
			gap := arrivals.Exp(cfg.ArrivalRatePerSec)
			at += time.Duration(gap * float64(time.Second))
		} else {
			at += 5 * time.Millisecond
		}
		stream := root.Split(fmt.Sprintf("req/%d", i))
		shared := stream.Float64() < cfg.StageCorrelation
		common := stream.Split("common")
		draws := make([][]perfmodel.Draw, len(stages))
		for s := range stages {
			draws[s] = make([]perfmodel.Draw, len(stages[s]))
			for b, f := range fns[s] {
				drawStream := stream
				if shared {
					// Every draw replays an identical stream: comonotonic
					// inputs, contention, and jitter along the workflow.
					drawStream = common.Split("replay")
				}
				coloc := cfg.Colocation.Sample(drawStream)
				draws[s][b] = f.NewDraw(drawStream, cfg.Batch, coloc, cfg.Interference)
			}
		}
		reqs[i] = &Request{
			ID:       i,
			Workflow: cfg.Workflow,
			Stages:   stages,
			Draws:    draws,
			Arrival:  at,
			Batch:    cfg.Batch,
		}
	}
	return reqs, nil
}

// ExecutorConfig sizes the serving plane.
type ExecutorConfig struct {
	// Cluster configures the substrate.
	Cluster cluster.Config
	// WarmStartup is the pod specialization delay when a warm pod exists.
	WarmStartup time.Duration
	// ColdStartup is the pod creation delay when the pool is empty.
	ColdStartup time.Duration
	// DecisionOverhead models the allocator's per-stage decision cost
	// (the paper measures Janus's online adaptation at < 3 ms).
	DecisionOverhead time.Duration
	// LiveInterference recomputes each stage's slowdown from the live
	// cluster co-location census instead of the pre-sampled draw. The
	// clairvoyant Optimal allocator is only meaningful with this off.
	LiveInterference bool
	// Interference is required when LiveInterference is set.
	Interference *interfere.Model
	// Seed drives live-interference jitter.
	Seed uint64
}

// DefaultExecutorConfig returns the configuration used by the paper-shaped
// experiments: warm pools, ~2 ms specialization, ~1 ms decision overhead.
func DefaultExecutorConfig() ExecutorConfig {
	return ExecutorConfig{
		Cluster:          cluster.DefaultConfig(),
		WarmStartup:      2 * time.Millisecond,
		ColdStartup:      300 * time.Millisecond,
		DecisionOverhead: time.Millisecond,
	}
}

// Executor serves workloads over a fresh simulated cluster per Run.
type Executor struct {
	cfg ExecutorConfig
	fns map[string]*perfmodel.Function
}

// NewExecutor validates the configuration and builds an executor.
func NewExecutor(cfg ExecutorConfig, fns map[string]*perfmodel.Function) (*Executor, error) {
	if cfg.WarmStartup < 0 || cfg.ColdStartup < 0 || cfg.DecisionOverhead < 0 {
		return nil, fmt.Errorf("platform: startup/overhead durations must be >= 0")
	}
	if cfg.LiveInterference && cfg.Interference == nil {
		return nil, fmt.Errorf("platform: LiveInterference requires an interference model")
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("platform: executor needs a function catalog")
	}
	return &Executor{cfg: cfg, fns: fns}, nil
}

// Clone returns an executor with the same configuration and function
// catalog for a concurrent driver to hand each worker goroutine. Today an
// Executor holds no per-run state — Run builds a fresh cluster and event
// engine per call, each strictly single-goroutine (Cluster documents the
// invariant) — so concurrent Runs on one Executor are already safe; Clone
// makes per-worker ownership explicit and keeps callers correct if the
// executor ever grows run-spanning state (pools, metrics). The catalog is
// shared: Function models are immutable after construction.
func (e *Executor) Clone() *Executor {
	return &Executor{cfg: e.cfg, fns: e.fns}
}

// TenantWorkload is one tenant's contribution to a mixed run: a request
// stream paired with the serving system that sizes it. In the paper's
// provider, many tenants' workflows share one substrate; pairing each
// stream with its own Allocator lets a mixed run serve Janus tenants next
// to early-binding ones on the same warm pools and node capacity.
type TenantWorkload struct {
	// Tenant names the workload; names must be unique within a mixed run
	// (empty is allowed only for a single-workload run).
	Tenant string
	// Requests is the tenant's pre-sampled request sequence. Request IDs
	// must be exactly 0..len(Requests)-1 (GenerateWorkload's numbering).
	Requests []*Request
	// Allocator is the tenant's serving system.
	Allocator Allocator
}

// tenantRun is one tenant's in-flight serving state.
type tenantRun struct {
	name   string
	alloc  Allocator
	traces []Trace
	done   int
}

type runState struct {
	ex      *Executor
	engine  *simclock.Engine
	cluster *cluster.Cluster
	tenants []*tenantRun
	stream  *rng.Stream
	// done counts requests whose final stage joined, across all tenants;
	// RunMixed compares it to the merged request count so starved requests
	// surface as an error instead of draining out as zero-value traces.
	done  int
	total int
	// waiting holds branch continuations blocked on pod capacity, FIFO.
	// Capacity freed by any release can unblock any tenant's waiter (a
	// node hosts pods of every function), so the queue is global — which
	// is exactly the cross-tenant contention a shared substrate implies.
	waiting []func()
	failed  error
}

// join tracks one fan-out stage's outstanding branches; the stage
// completes — and the next stage (or the request) may proceed — when the
// slowest branch releases its pod.
type join struct {
	pending int
}

// Run serves the requests with the given allocator and returns one trace
// per request, ordered by request ID. It is the single-tenant special case
// of RunMixed: one workload owning the whole cluster.
func (e *Executor) Run(reqs []*Request, alloc Allocator) ([]Trace, error) {
	out, err := e.RunMixed([]TenantWorkload{{Requests: reqs, Allocator: alloc}})
	if err != nil {
		return nil, err
	}
	return out[""], nil
}

// RunMixed merges the arrival streams of several tenants' workloads into
// one discrete-event run on one shared cluster and returns each tenant's
// traces (ordered by request ID) keyed by tenant name. Tenants genuinely
// contend: warm pools, node millicores, the FIFO capacity queue, and the
// co-location census behind the interference model are all shared, so a
// burst from one tenant inflates another's cold starts, parking, and
// interference — the multi-tenant serving condition that motivates
// bilateral adaptation.
//
// Requests that never finish — their allocation can never be placed on any
// node, so their continuations stay parked after the event queue drains —
// fail the run explicitly: a zero-value trace (E2E 0, zero millicores)
// would silently flatter every violation-rate and cost metric downstream.
func (e *Executor) RunMixed(tenants []TenantWorkload) (map[string][]Trace, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("platform: no tenant workloads")
	}
	seen := make(map[string]bool, len(tenants))
	total := 0
	for i, tw := range tenants {
		if tw.Tenant == "" && len(tenants) > 1 {
			return nil, fmt.Errorf("platform: tenant %d has no name (names are required in a mixed run)", i)
		}
		if seen[tw.Tenant] {
			return nil, fmt.Errorf("platform: duplicate tenant %q", tw.Tenant)
		}
		seen[tw.Tenant] = true
		if len(tw.Requests) == 0 {
			return nil, fmt.Errorf("platform: tenant %q has no requests", tw.Tenant)
		}
		if tw.Allocator == nil {
			return nil, fmt.Errorf("platform: tenant %q has a nil allocator", tw.Tenant)
		}
		ids := make([]bool, len(tw.Requests))
		for _, r := range tw.Requests {
			if r.ID < 0 || r.ID >= len(tw.Requests) || ids[r.ID] {
				return nil, fmt.Errorf("platform: tenant %q request IDs must be unique in [0, %d), got %d",
					tw.Tenant, len(tw.Requests), r.ID)
			}
			ids[r.ID] = true
		}
		total += len(tw.Requests)
	}
	cl, err := cluster.New(e.cfg.Cluster)
	if err != nil {
		return nil, err
	}
	// Deploy the union of every tenant's functions once: tenants running
	// the same function share its warm pool and co-location census.
	deployed := map[string]bool{}
	for _, tw := range tenants {
		for _, r := range tw.Requests {
			for _, stage := range r.Stages {
				for _, n := range stage {
					if _, ok := e.fns[n.Function]; !ok {
						return nil, fmt.Errorf("platform: tenant %q request %d references unknown function %q", tw.Tenant, r.ID, n.Function)
					}
					if !deployed[n.Function] {
						if err := cl.Deploy(n.Function); err != nil {
							return nil, err
						}
						deployed[n.Function] = true
					}
				}
			}
		}
	}
	st := &runState{
		ex:      e,
		engine:  simclock.New(),
		cluster: cl,
		stream:  rng.New(e.cfg.Seed).Split("executor"),
		total:   total,
	}
	// Admissions are scheduled tenant by tenant in input order; the event
	// engine merges them by arrival time, breaking ties by scheduling
	// sequence, so the interleaving is a pure function of the inputs and
	// mixed runs replay byte for byte.
	for _, tw := range tenants {
		tn := &tenantRun{name: tw.Tenant, alloc: tw.Allocator, traces: make([]Trace, len(tw.Requests))}
		st.tenants = append(st.tenants, tn)
		for _, r := range tw.Requests {
			r := r
			st.engine.ScheduleAt(r.Arrival, func(time.Duration) { st.startStage(tn, r, 0, nil) })
		}
	}
	st.engine.Run()
	if st.failed != nil {
		return nil, st.failed
	}
	if st.done != total {
		starved := ""
		for _, tn := range st.tenants {
			if missing := len(tn.traces) - tn.done; missing > 0 {
				starved += fmt.Sprintf(" %s:%d", tn.name, missing)
			}
		}
		return nil, fmt.Errorf("platform: %d of %d requests never completed (allocation cannot be placed on any node; %d branch continuation(s) still parked; per tenant:%s)",
			total-st.done, total, len(st.waiting), starved)
	}
	out := make(map[string][]Trace, len(st.tenants))
	for _, tn := range st.tenants {
		out[tn.name] = tn.traces
	}
	return out, nil
}

// startStage makes the stage's allocation decision — exactly once, even if
// branches later stall on capacity — and launches every branch.
func (st *runState) startStage(tn *tenantRun, r *Request, stage int, acc *Trace) {
	if st.failed != nil {
		return
	}
	if acc == nil {
		acc = &Trace{RequestID: r.ID, Tenant: tn.name, System: tn.alloc.Name(), Arrival: r.Arrival, SLO: r.Workflow.SLO()}
	}
	now := st.engine.Now()
	remaining := r.Workflow.SLO() - (now - r.Arrival)
	mc, hit := tn.alloc.Allocate(r, stage, remaining)
	if mc <= 0 {
		st.fail(fmt.Errorf("platform: allocator %s returned non-positive allocation %d", tn.alloc.Name(), mc))
		return
	}
	acc.Decisions++
	if !hit {
		acc.Misses++
	}
	j := &join{pending: len(r.Stages[stage])}
	for b := range r.Stages[stage] {
		st.startBranch(tn, r, stage, b, mc, hit, acc, j, false)
		if st.failed != nil {
			return
		}
	}
}

// startBranch acquires a pod for one branch of a stage, parking the
// acquisition (not the decision — that is already made and paid for) when
// the cluster lacks capacity. retried marks a wake()-driven re-attempt: a
// branch counts one Parked queueing episode no matter how many releases it
// sleeps through before fitting.
func (st *runState) startBranch(tn *tenantRun, r *Request, stage, branch, mc int, hit bool, acc *Trace, j *join, retried bool) {
	if st.failed != nil {
		return
	}
	fn := r.Stages[stage][branch].Function
	pod, cold, err := st.cluster.Acquire(fn, mc)
	if err != nil {
		// No capacity right now: park the continuation until a release.
		// Each branch parks independently — its siblings keep running.
		if !retried {
			acc.Parked++
		}
		st.waiting = append(st.waiting, func() { st.startBranch(tn, r, stage, branch, mc, hit, acc, j, true) })
		return
	}
	st.execute(tn, r, stage, branch, acc, j, pod, cold, hit)
}

func (st *runState) execute(tn *tenantRun, r *Request, stage, branch int, acc *Trace, j *join, pod *cluster.Pod, cold, hit bool) {
	fn := st.ex.fns[r.Stages[stage][branch].Function]
	draw := r.Draws[stage][branch]
	if st.ex.cfg.LiveInterference {
		census := st.cluster.Colocated(pod)
		draw.Slowdown = st.ex.cfg.Interference.Sample(fn.Dimension(), census, st.stream)
	}
	startup := st.ex.cfg.WarmStartup
	if cold {
		startup = st.ex.cfg.ColdStartup
	}
	latency := fn.Latency(draw, pod.Millicores())
	// The stage's decision gates every branch launch, so each branch span
	// carries the decision overhead alongside its own startup and latency.
	branchSpan := st.ex.cfg.DecisionOverhead + startup + latency
	start := st.engine.Now()
	st.engine.Schedule(branchSpan, func(end time.Duration) {
		if st.failed != nil {
			return
		}
		acc.Stages = append(acc.Stages, StageTrace{
			Function:   r.Stages[stage][branch].Function,
			Stage:      stage,
			Branch:     branch,
			Node:       pod.NodeID,
			Millicores: pod.Millicores(),
			Start:      start,
			End:        end,
			Startup:    startup,
			Latency:    latency,
			Cold:       cold,
			Hit:        hit,
		})
		acc.TotalMillicores += pod.Millicores()
		if err := st.cluster.Release(pod); err != nil {
			st.fail(err)
			return
		}
		st.wake()
		j.pending--
		if j.pending > 0 {
			// The join waits for the stage's slowest branch.
			return
		}
		if stage+1 < len(r.Stages) {
			st.startStage(tn, r, stage+1, acc)
			return
		}
		acc.Done = end
		acc.E2E = end - r.Arrival
		tn.traces[r.ID] = *acc
		tn.done++
		st.done++
	})
}

// wake re-admits all parked continuations in FIFO order; those that still
// cannot acquire a pod re-park themselves.
func (st *runState) wake() {
	if len(st.waiting) == 0 {
		return
	}
	queue := st.waiting
	st.waiting = nil
	for _, next := range queue {
		next()
	}
}

func (st *runState) fail(err error) {
	if st.failed == nil {
		st.failed = err
		st.engine.Stop()
	}
}
