package platform

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/workflow"
)

// iaReplayWorkload generates the IA workload with explicit schedule-style
// arrival instants.
func iaReplayWorkload(t *testing.T, arrivals []time.Duration) []*Request {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateWorkload(WorkloadConfig{
		Workflow:     workflow.IntelligentAssistant(),
		Functions:    perfmodel.Catalog(),
		Batch:        1,
		Arrivals:     arrivals,
		Colocation:   coloc,
		Interference: interfere.Default(),
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func everyN(n int, gap time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

func TestGenerateWorkloadExplicitArrivals(t *testing.T) {
	arrivals := []time.Duration{0, 10 * time.Millisecond, 10 * time.Millisecond, time.Second}
	reqs := iaReplayWorkload(t, arrivals)
	if len(reqs) != len(arrivals) {
		t.Fatalf("%d requests for %d arrivals", len(reqs), len(arrivals))
	}
	for i, r := range reqs {
		if r.Arrival != arrivals[i] {
			t.Fatalf("request %d admitted at %v, want %v", i, r.Arrival, arrivals[i])
		}
	}
	// Draws must match the Poisson-generated workload request for
	// request: the admission source must not perturb runtime conditions.
	poisson := iaWorkload(t, len(arrivals))
	for i := range reqs {
		if !reflect.DeepEqual(reqs[i].Draws, poisson[i].Draws) {
			t.Fatalf("request %d draws differ between explicit and Poisson arrivals", i)
		}
	}
}

func TestGenerateWorkloadExplicitArrivalValidation(t *testing.T) {
	coloc, _ := interfere.NewCountSampler([]float64{1})
	base := WorkloadConfig{
		Workflow:     workflow.IntelligentAssistant(),
		Functions:    perfmodel.Catalog(),
		Batch:        1,
		Colocation:   coloc,
		Interference: interfere.Default(),
	}
	bad := base
	bad.Arrivals = []time.Duration{time.Second, time.Millisecond}
	if _, err := GenerateWorkload(bad); err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
	bad = base
	bad.Arrivals = []time.Duration{-time.Millisecond}
	if _, err := GenerateWorkload(bad); err == nil {
		t.Fatal("negative arrival accepted")
	}
	bad = base
	bad.Arrivals = []time.Duration{0, time.Millisecond}
	bad.N = 5
	if _, err := GenerateWorkload(bad); err == nil {
		t.Fatal("N disagreeing with explicit arrivals accepted")
	}
}

func TestRunReplayValidation(t *testing.T) {
	e := defaultExecutor(t)
	reqs := iaReplayWorkload(t, everyN(3, 50*time.Millisecond))
	tenants := []TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}}}}
	if _, _, err := e.RunReplay(tenants, ReplayConfig{Interval: 0}); err == nil {
		t.Fatal("zero control interval accepted")
	}
	if _, _, err := e.RunReplay(tenants, ReplayConfig{Interval: time.Second, Horizon: -time.Second}); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// TestRunReplayMatchesRunMixedWithoutController pins the reuse claim: with
// no controller and no hook, the control loop is pure observation and the
// traces are byte-identical to RunMixed over the same requests.
func TestRunReplayMatchesRunMixedWithoutController(t *testing.T) {
	arrivals := everyN(40, 25*time.Millisecond)
	alloc := &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}}
	e := defaultExecutor(t)
	mixed, err := e.RunMixed([]TenantWorkload{{Requests: iaReplayWorkload(t, arrivals), Allocator: alloc}})
	if err != nil {
		t.Fatal(err)
	}
	replayed, metrics, err := e.RunReplay(
		[]TenantWorkload{{Requests: iaReplayWorkload(t, arrivals), Allocator: alloc}},
		ReplayConfig{Interval: 100 * time.Millisecond, Horizon: time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mixed, replayed) {
		t.Fatal("replay without a controller diverged from RunMixed")
	}
	if metrics.Ticks == 0 || metrics.PodSeconds <= 0 || metrics.PeakPods <= 0 {
		t.Fatalf("empty replay metrics: %+v", metrics)
	}
	if metrics.PoolGrown != 0 || metrics.PoolShrunk != 0 {
		t.Fatalf("static replay churned pools: %+v", metrics)
	}
}

// rampController raises every pool to `up` at the first tick and drops it
// to `down` once the virtual clock passes `cut`.
type rampController struct {
	up, down int
	cut      time.Duration
}

func (c *rampController) Name() string { return "ramp" }

func (c *rampController) Targets(now time.Duration, stats []ReplayFunctionStats) map[string]int {
	out := make(map[string]int, len(stats))
	for _, fs := range stats {
		if now < c.cut {
			out[fs.Function] = c.up
		} else {
			out[fs.Function] = c.down
		}
	}
	return out
}

func TestRunReplayControllerScalesPools(t *testing.T) {
	arrivals := everyN(30, 20*time.Millisecond)
	e := defaultExecutor(t)
	ctrl := &rampController{up: 6, down: 1, cut: 2 * time.Second}
	traces, metrics, err := e.RunReplay(
		[]TenantWorkload{{Requests: iaReplayWorkload(t, arrivals), Allocator: &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}}}},
		ReplayConfig{Interval: 100 * time.Millisecond, Horizon: 4 * time.Second, Controller: ctrl},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(traces[""]); got != len(arrivals) {
		t.Fatalf("served %d of %d requests", got, len(arrivals))
	}
	// Deploy pre-warms 3 per function; the scale-up to 6 must have built
	// pods (after cold-start delays) and the drop to 1 must have shed
	// them again.
	if metrics.PoolGrown == 0 {
		t.Fatalf("scale-up built no pods: %+v", metrics)
	}
	if metrics.PoolShrunk == 0 {
		t.Fatalf("scale-down shed no pods: %+v", metrics)
	}
	if metrics.PeakPods <= 3 {
		t.Fatalf("peak pods %d never rose above a single pre-warmed pool", metrics.PeakPods)
	}
}

// recordingController raises every pool to `up` at the first tick and
// records the maximum warm depth it observes at each tick instant.
type recordingController struct {
	up      int
	maxWarm map[time.Duration]int
}

func (c *recordingController) Name() string { return "recording" }

func (c *recordingController) Targets(now time.Duration, stats []ReplayFunctionStats) map[string]int {
	for _, fs := range stats {
		if fs.Warm > c.maxWarm[now] {
			c.maxWarm[now] = fs.Warm
		}
	}
	out := make(map[string]int, len(stats))
	for _, fs := range stats {
		out[fs.Function] = c.up
	}
	return out
}

// TestRunReplayScaleUpPaysColdStart pins the honesty property: a target
// raised at tick zero yields no warm pod beyond the pre-warmed depth
// before the cold-start delay has elapsed, and yields them right after.
func TestRunReplayScaleUpPaysColdStart(t *testing.T) {
	cfg := DefaultExecutorConfig()
	cfg.ColdStartup = 300 * time.Millisecond
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &recordingController{up: 5, maxWarm: map[time.Duration]int{}}
	// A single quiet request: pools never drain below the pre-warmed 3
	// except for the pods the request itself borrows.
	_, _, err = e.RunReplay(
		[]TenantWorkload{{Requests: iaReplayWorkload(t, []time.Duration{0}), Allocator: &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}}}},
		ReplayConfig{Interval: 50 * time.Millisecond, Horizon: time.Second, Controller: ctrl},
	)
	if err != nil {
		t.Fatal(err)
	}
	for at, warm := range ctrl.maxWarm {
		if at < cfg.ColdStartup && warm > 3 {
			t.Fatalf("pool grew beyond pre-warmed depth at %v (< cold start %v): warm %d", at, cfg.ColdStartup, warm)
		}
	}
	sawGrowth := false
	for at, warm := range ctrl.maxWarm {
		if at >= cfg.ColdStartup && warm >= 5 {
			sawGrowth = true
		}
	}
	if !sawGrowth {
		t.Fatalf("scale-up never landed after the cold-start delay: %v", ctrl.maxWarm)
	}
}

// TestRunReplayStarvationErrors pins parity with RunMixed: an allocation
// that can never be placed must fail the run with the starvation
// diagnostic, not spin the control loop on the virtual clock forever.
func TestRunReplayStarvationErrors(t *testing.T) {
	e := defaultExecutor(t)
	reqs := iaReplayWorkload(t, everyN(2, 10*time.Millisecond))
	// 60000 millicores exceeds the default node's 52000: the acquisition
	// parks permanently.
	tenants := []TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "huge", Sizes: []int{60000, 60000, 60000}}}}
	done := make(chan error, 1)
	go func() {
		_, _, err := e.RunReplay(tenants, ReplayConfig{Interval: 100 * time.Millisecond, Horizon: time.Second})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "never completed") {
			t.Fatalf("starved replay returned %v, want the starvation diagnostic", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("starved replay hung instead of erroring")
	}
}
