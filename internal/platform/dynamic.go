package platform

import (
	"fmt"
	"time"

	"janus/internal/cluster"
	"janus/internal/obs"
	"janus/internal/workflow"
)

// This file is the serving plane's dynamic-shape path: requests of a
// workflow with dynamic annotations (workflow.NewDynamic) materialize
// their plan online as predicates resolve, instead of executing the
// full static skeleton. The skeleton still defines the decision groups
// and readiness countdowns — the static engine's structures are reused
// unchanged — and three per-request overlays project it down:
//
//   - liveness: a completed choice node kills its unchosen successor
//     edges; a node all of whose incoming edges are dead is pruned —
//     counted as finished for readiness and completion the instant its
//     death is determined, never scheduled, never billed;
//   - replication: a map node's fan-out width, revealed at its group's
//     readiness instant, launches that many concurrent replicas which
//     join before the node counts as done;
//   - iteration: a failed attempt of a retry node re-executes after a
//     fresh allocation decision against the SLO budget remaining at
//     that instant (the budget mechanism absorbs the repeated work);
//     an await node defers its group's decision to the fire instant of
//     its external trigger.
//
// Every resolution is pre-drawn from the request's seeded RNG
// (DynDraws), so a dynamic run is a pure function of its inputs: the
// event interleaving, traces, and metrics replay byte for byte at any
// driver parallelism, exactly like the static engine.

// dynPlan is the per-workflow dynamic overlay of a dagPlan: flat node
// indexing plus the annotation, successor, and in-degree tables the
// liveness propagation walks. Derived once per workflow, shared by
// every request.
type dynPlan struct {
	// flat maps a step name to its flat node index; base[g] is the
	// first flat index of group g's members (flat = base[g] + member).
	flat map[string]int
	base []int
	// steps, loc, spec, inDeg are indexed by flat node index.
	steps []string
	loc   []dynLoc
	spec  []workflow.DynamicNode
	inDeg []int
	// succ[flat] lists successor flat indices in edge-declaration
	// order — the order choice resolutions index.
	succ [][]int
	// awaits lists the flat indices of await steps.
	awaits []int
}

type dynLoc struct{ group, member int }

func newDynPlan(w *workflow.Workflow, p *dagPlan) *dynPlan {
	dp := &dynPlan{flat: map[string]int{}, base: make([]int, len(p.groups))}
	for g, grp := range p.groups {
		dp.base[g] = len(dp.steps)
		for b, n := range grp {
			flat := len(dp.steps)
			dp.flat[n.Name] = flat
			dp.steps = append(dp.steps, n.Name)
			dp.loc = append(dp.loc, dynLoc{group: g, member: b})
			d, _ := w.Dynamic(n.Name)
			dp.spec = append(dp.spec, d)
			dp.inDeg = append(dp.inDeg, len(w.Predecessors(n.Name)))
			if d.Await {
				dp.awaits = append(dp.awaits, flat)
			}
		}
	}
	dp.succ = make([][]int, len(dp.steps))
	for flat, step := range dp.steps {
		for _, s := range w.Successors(step) {
			dp.succ[flat] = append(dp.succ[flat], dp.flat[s])
		}
	}
	return dp
}

func (dp *dynPlan) isAwait(flat int) bool { return dp.spec[flat].Await }

// validateRequest checks that a request of a dynamic workflow carries a
// complete, in-range pre-sampled resolution (GenerateWorkload's output
// shape): hand-built requests fail here instead of mid-run.
func (dp *dynPlan) validateRequest(tenant string, r *Request) error {
	if r.Dyn == nil {
		return fmt.Errorf("platform: tenant %q request %d serves dynamic workflow %s without pre-sampled resolutions (Request.Dyn)",
			tenant, r.ID, r.Workflow.Name())
	}
	for flat, step := range dp.steps {
		d := dp.spec[flat]
		if d.Choice != nil {
			idx, ok := r.Dyn.Choice[step]
			if !ok || idx < 0 || idx >= len(dp.succ[flat]) {
				return fmt.Errorf("platform: tenant %q request %d choice step %q resolution %d out of range [0, %d)",
					tenant, r.ID, step, idx, len(dp.succ[flat]))
			}
		}
		if d.Map == nil && d.Retry == nil {
			continue
		}
		width := 1
		if d.Map != nil {
			width = r.Dyn.Width[step]
			if width < 1 || width > d.Map.MaxWidth {
				return fmt.Errorf("platform: tenant %q request %d map step %q width %d outside [1, %d]",
					tenant, r.ID, step, width, d.Map.MaxWidth)
			}
		}
		attempts := r.Dyn.Attempts[step]
		if len(attempts) != width {
			return fmt.Errorf("platform: tenant %q request %d step %q carries %d attempt counts for width %d",
				tenant, r.ID, step, len(attempts), width)
		}
		maxRetries := 0
		if d.Retry != nil {
			maxRetries = d.Retry.MaxRetries
		}
		draws := r.Dyn.NodeDraws[step]
		if len(draws) != width {
			return fmt.Errorf("platform: tenant %q request %d step %q carries %d draw rows for width %d",
				tenant, r.ID, step, len(draws), width)
		}
		for rep, a := range attempts {
			if a < 0 || a > maxRetries {
				return fmt.Errorf("platform: tenant %q request %d step %q replica %d plans %d failures, retry bound %d",
					tenant, r.ID, step, rep, a, maxRetries)
			}
			if len(draws[rep]) != a+1 {
				return fmt.Errorf("platform: tenant %q request %d step %q replica %d carries %d draws for %d attempts",
					tenant, r.ID, step, rep, len(draws[rep]), a+1)
			}
		}
	}
	return nil
}

// dynReqState is one request's dynamic-shape serving state, indexed by
// flat node index.
type dynReqState struct {
	// dead marks pruned nodes; liveIn counts incoming edges not yet
	// determined dead (a node dies when it reaches zero).
	dead   []bool
	liveIn []int
	// repsLeft counts a node's outstanding replicas; the node completes
	// when the last replica's final attempt lands.
	repsLeft []int
	// attempt[flat][replica] is the replica's current 0-based attempt.
	attempt [][]int
	// armed marks await steps a trigger will fire for; fired latches an
	// early trigger; waitingTrig marks readiness reached with the
	// decision deferred to the trigger.
	armed, fired, waitingTrig []bool
}

func newDynReqState(dp *dynPlan) *dynReqState {
	n := len(dp.steps)
	d := &dynReqState{
		dead:        make([]bool, n),
		liveIn:      make([]int, n),
		repsLeft:    make([]int, n),
		attempt:     make([][]int, n),
		armed:       make([]bool, n),
		fired:       make([]bool, n),
		waitingTrig: make([]bool, n),
	}
	copy(d.liveIn, dp.inDeg)
	return d
}

// startGroupDyn is the dynamic path of startGroup: it runs at the
// group's readiness instant (every predecessor completed or dead, so
// every member's liveness is determined), skips fully pruned groups,
// and defers an await member's decision to its trigger.
func (st *runState) startGroupDyn(rs *reqState, group int) {
	dp := rs.plan.dyn
	members := rs.plan.groups[group]
	anyLive := false
	for b := range members {
		if !rs.dyn.dead[dp.base[group]+b] {
			anyLive = true
			break
		}
	}
	if !anyLive {
		return // pruned; the members' deaths already advanced readiness
	}
	if len(members) == 1 {
		flat := dp.base[group]
		if dp.spec[flat].Await && !rs.dyn.fired[flat] {
			rs.dyn.waitingTrig[flat] = true
			return
		}
	}
	st.launchGroupDyn(rs, group)
}

// launchGroupDyn makes the group's one allocation decision — at its
// actual readiness instant, against SLO − elapsed, with the resolved
// shape revealed to shape-aware allocators — and launches every live
// member (map members as their resolved number of replicas).
func (st *runState) launchGroupDyn(rs *reqState, group int) {
	dp := rs.plan.dyn
	now := st.engine.Now()
	remaining := rs.r.Workflow.SLO() - (now - rs.arrival)
	mc, hit := st.allocateDyn(rs, group, remaining)
	if mc <= 0 {
		st.fail(fmt.Errorf("platform: allocator %s returned non-positive allocation %d", rs.tn.alloc.Name(), mc))
		return
	}
	rs.acc.Decisions++
	if !hit {
		rs.acc.Misses++
	}
	if st.tracer != nil {
		ev := reqEvent(rs, now, obs.KindDecision)
		ev.Group = group
		ev.Value = int64(mc)
		ev.Aux = int64(remaining)
		ev.Flag = hit
		ev.Reason = st.groupShape(rs, group)
		st.tracer.Emit(ev)
	}
	if rs.tn.om != nil {
		rs.tn.om.decision(hit)
	}
	for b := range rs.plan.groups[group] {
		flat := dp.base[group] + b
		if rs.dyn.dead[flat] {
			continue
		}
		width := 1
		if dp.spec[flat].Map != nil {
			width = rs.r.Dyn.Width[dp.steps[flat]]
		}
		rs.dyn.repsLeft[flat] = width
		rs.dyn.attempt[flat] = make([]int, width)
		for rep := 0; rep < width; rep++ {
			st.startNodeDyn(rs, group, b, rep, mc, hit, false)
			if st.failed != nil {
				return
			}
		}
	}
}

// groupShape is the resolved-shape key of a decision group at its
// readiness instant: the live map member's drawn width ("w=3"), or ""
// when nothing in the group resolved. This is exactly the key the
// synthesizer's per-(group, resolved-shape) variant tables carry.
func (st *runState) groupShape(rs *reqState, group int) string {
	dp := rs.plan.dyn
	for b := range rs.plan.groups[group] {
		flat := dp.base[group] + b
		if dp.spec[flat].Map != nil && !rs.dyn.dead[flat] {
			return fmt.Sprintf("w=%d", rs.r.Dyn.Width[dp.steps[flat]])
		}
	}
	return ""
}

// allocateDyn makes one dynamic-path decision. Shape-aware allocators
// see the group's resolved-shape key; plain allocators get their usual
// conservative call. Dynamic decisions bypass the memo: they may
// depend on the shape, which the memo key cannot express.
func (st *runState) allocateDyn(rs *reqState, group int, remaining time.Duration) (int, bool) {
	if sa, ok := rs.tn.alloc.(ShapeAwareAllocator); ok {
		return sa.AllocateShaped(rs.r, group, st.groupShape(rs, group), remaining)
	}
	return rs.tn.alloc.Allocate(rs.r, group, remaining)
}

// startNodeDyn mirrors startNode for one replica of a dynamic node:
// acquire a pod or park the already-decided allocation until capacity
// frees up.
func (st *runState) startNodeDyn(rs *reqState, group, member, replica, mc int, hit, retried bool) {
	if st.failed != nil {
		return
	}
	fn := rs.plan.groups[group][member].Function
	pod, cold, err := st.cluster.Acquire(fn, mc)
	if err != nil {
		if retried {
			st.park.restore(st.retrySlot, st.retryPos)
			if st.om != nil {
				st.om.parkDepth.Set(int64(st.park.live))
			}
			return
		}
		rs.acc.Parked++
		if st.window != nil {
			st.window.queued[fn]++
		}
		st.park.park(st.slotOf(fn), parkedNode{rs: rs, group: int32(group), member: int32(member), replica: int32(replica), mc: int32(mc), hit: hit, fn: fn})
		if st.tracer != nil {
			ev := reqEvent(rs, st.engine.Now(), obs.KindPark)
			ev.Group, ev.Member, ev.Replica = group, member, replica
			ev.Function = fn
			ev.Value = int64(mc)
			st.tracer.Emit(ev)
		}
		if rs.tn.om != nil {
			rs.tn.om.parked.Inc()
		}
		if st.om != nil {
			st.om.parkDepth.Set(int64(st.park.live))
		}
		return
	}
	if st.window != nil {
		if retried {
			st.window.queued[fn]--
		}
		st.window.acquires[fn]++
		if cold {
			st.window.cold[fn]++
		}
	}
	if st.tracer != nil {
		now := st.engine.Now()
		ev := reqEvent(rs, now, obs.KindAcquire)
		ev.Group, ev.Member, ev.Replica = group, member, replica
		ev.Function = fn
		ev.Value = int64(pod.Millicores())
		ev.Aux = int64(pod.NodeID)
		ev.Flag = cold
		st.tracer.Emit(ev)
		if cold {
			cs := reqEvent(rs, now, obs.KindColdStart)
			cs.Group, cs.Member, cs.Replica = group, member, replica
			cs.Function = fn
			cs.Value = int64(st.ex.cfg.ColdStartup)
			st.tracer.Emit(cs)
		}
	}
	st.executeDyn(rs, group, member, replica, pod, cold, hit)
}

// executeDyn runs one attempt of one replica: the draw comes from the
// request's pre-sampled per-(replica, attempt) table for map/retry
// steps and from the base draw otherwise.
func (st *runState) executeDyn(rs *reqState, group, member, replica int, pod *cluster.Pod, cold, hit bool) {
	dp := rs.plan.dyn
	flat := dp.base[group] + member
	node := rs.plan.groups[group][member]
	fn := st.ex.fns[node.Function]
	attempt := rs.dyn.attempt[flat][replica]
	draw := rs.r.Draws[group][member]
	if nd, ok := rs.r.Dyn.NodeDraws[node.Name]; ok {
		draw = nd[replica][attempt]
	}
	if st.ex.cfg.LiveInterference {
		census := st.cluster.Colocated(pod)
		draw.Slowdown = st.ex.cfg.Interference.Sample(fn.Dimension(), census, st.stream)
	}
	startup := st.ex.cfg.WarmStartup
	if cold {
		startup = st.ex.cfg.ColdStartup
	}
	latency := fn.Latency(draw, pod.Millicores())
	span := st.ex.cfg.DecisionOverhead + startup + latency
	start := st.engine.Now()
	st.engine.Schedule(span, func(end time.Duration) {
		if st.failed != nil {
			return
		}
		rs.acc.Stages = append(rs.acc.Stages, StageTrace{
			Function:   node.Function,
			Step:       node.Name,
			Stage:      group,
			Branch:     member,
			Replica:    replica,
			Attempt:    attempt,
			Node:       pod.NodeID,
			Millicores: pod.Millicores(),
			Start:      start,
			End:        end,
			Startup:    startup,
			Latency:    latency,
			Cold:       cold,
			Hit:        hit,
		})
		rs.acc.TotalMillicores += pod.Millicores()
		if st.tracer != nil {
			ev := reqEvent(rs, end, obs.KindRelease)
			ev.Group, ev.Member, ev.Replica = group, member, replica
			ev.Function = node.Function
			ev.Value = int64(pod.Millicores())
			ev.Aux = int64(pod.NodeID)
			st.tracer.Emit(ev)
		}
		if rs.tn.om != nil {
			rs.tn.om.observeNode(node.Function, latency)
		}
		if err := st.cluster.Release(pod); err != nil {
			st.fail(err)
			return
		}
		st.wake()
		st.replicaDone(rs, group, member, replica, end)
	})
}

// replicaDone handles one attempt's completion: a planned failure
// re-decides and relaunches the replica (bounded retry), the last
// replica's success completes the node.
func (st *runState) replicaDone(rs *reqState, group, member, replica int, end time.Duration) {
	dp := rs.plan.dyn
	flat := dp.base[group] + member
	step := dp.steps[flat]
	planned := 0
	if a, ok := rs.r.Dyn.Attempts[step]; ok {
		planned = a[replica]
	}
	if rs.dyn.attempt[flat][replica] < planned {
		rs.dyn.attempt[flat][replica]++
		// The re-attempt is a new readiness instant for this node: a
		// fresh decision against the SLO budget that remains now. The
		// group's cone table still applies — the remaining work is the
		// same cone, just later in its budget.
		remaining := rs.r.Workflow.SLO() - (end - rs.arrival)
		mc, hit := st.allocateDyn(rs, group, remaining)
		if mc <= 0 {
			st.fail(fmt.Errorf("platform: allocator %s returned non-positive allocation %d", rs.tn.alloc.Name(), mc))
			return
		}
		rs.acc.Decisions++
		if !hit {
			rs.acc.Misses++
		}
		if st.tracer != nil {
			ev := reqEvent(rs, end, obs.KindDecision)
			ev.Group = group
			ev.Value = int64(mc)
			ev.Aux = int64(remaining)
			ev.Flag = hit
			ev.Reason = st.groupShape(rs, group)
			st.tracer.Emit(ev)
		}
		if rs.tn.om != nil {
			rs.tn.om.decision(hit)
		}
		st.startNodeDyn(rs, group, member, replica, mc, hit, false)
		return
	}
	rs.dyn.repsLeft[flat]--
	if rs.dyn.repsLeft[flat] > 0 {
		return
	}
	st.nodeDoneDyn(rs, flat, end)
}

// nodeDoneDyn is the dynamic path of nodeDone: a completed choice node
// first kills its unchosen successor edges (settling every downstream
// readiness countdown before the completion itself is applied), then
// the usual pending decrements start whichever groups became ready.
func (st *runState) nodeDoneDyn(rs *reqState, flat int, end time.Duration) {
	dp := rs.plan.dyn
	step := dp.steps[flat]
	if dp.spec[flat].Choice != nil {
		chosen := rs.r.Dyn.Choice[step]
		for i, next := range dp.succ[flat] {
			if i == chosen {
				continue
			}
			st.edgeDead(rs, next, end)
			if st.failed != nil {
				return
			}
		}
	}
	rs.remaining--
	if rs.remaining == 0 {
		st.finishRequest(rs, end)
		return
	}
	for _, dg := range rs.plan.dependents[step] {
		rs.pending[dg]--
		if rs.pending[dg] == 0 {
			st.startGroupDyn(rs, dg)
			if st.failed != nil {
				return
			}
		}
	}
}

// edgeDead records one incoming edge of a node as dead; the node dies
// when its last potentially-live edge does.
func (st *runState) edgeDead(rs *reqState, flat int, end time.Duration) {
	rs.dyn.liveIn[flat]--
	if rs.dyn.liveIn[flat] > 0 || rs.dyn.dead[flat] {
		return
	}
	st.markDead(rs, flat, end)
}

// markDead prunes a node: it counts as finished immediately (for both
// the request's completion and its dependents' readiness), and its
// death propagates along every outgoing edge — the cascade that prunes
// a whole unchosen subtree in one instant.
func (st *runState) markDead(rs *reqState, flat int, end time.Duration) {
	dp := rs.plan.dyn
	rs.dyn.dead[flat] = true
	rs.remaining--
	if rs.remaining == 0 {
		st.finishRequest(rs, end)
		return
	}
	for _, next := range dp.succ[flat] {
		st.edgeDead(rs, next, end)
		if st.failed != nil {
			return
		}
	}
	step := dp.steps[flat]
	for _, dg := range rs.plan.dependents[step] {
		rs.pending[dg]--
		if rs.pending[dg] == 0 {
			st.startGroupDyn(rs, dg)
			if st.failed != nil {
				return
			}
		}
	}
}

func (st *runState) finishRequest(rs *reqState, end time.Duration) {
	rs.acc.Done = end
	rs.acc.E2E = end - rs.arrival
	rs.tn.traces[rs.r.ID] = rs.acc
	rs.tn.done++
	st.done++
	if st.tracer != nil || rs.tn.om != nil {
		st.observeComplete(rs, end)
	}
}

// fireTrigger delivers an external event to its await step: if the
// step already reached readiness the deferred decision runs now; an
// early trigger latches so the step proceeds without waiting when it
// becomes ready; a trigger into a pruned branch is a no-op.
func (st *runState) fireTrigger(rs *reqState, flat int, now time.Duration) {
	if st.failed != nil {
		return
	}
	if st.tracer != nil {
		ev := reqEvent(rs, now, obs.KindTrigger)
		ev.Reason = rs.plan.dyn.steps[flat]
		st.tracer.Emit(ev)
	}
	rs.dyn.fired[flat] = true
	if rs.dyn.dead[flat] || !rs.dyn.waitingTrig[flat] {
		return
	}
	rs.dyn.waitingTrig[flat] = false
	st.launchGroupDyn(rs, rs.plan.dyn.loc[flat].group)
}
