// Package rng provides deterministic, stream-splittable random number
// generation plus the distributions used throughout the simulator.
//
// A single experiment seed fans out into named sub-streams (one per
// component, function, or request lane) so that adding a consumer never
// perturbs the draws seen by an unrelated one. That property is what keeps
// the paper's experiments reproducible run to run.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random stream. Create one with New and derive
// independent children with Split.
type Stream struct {
	r    *rand.Rand
	seed uint64
}

// New returns a Stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)), seed: seed}
}

// Split derives an independent child stream from a label. The same
// (seed, label) pair always yields the same child.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Seed reports the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// NormFloat64 returns a standard normal deviate.
func (s *Stream) NormFloat64() float64 { return s.r.NormFloat64() }

// Normal returns a normal deviate with the given mean and stddev.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)). With mu = 0 the median is 1,
// which makes it a convenient multiplicative noise factor.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// LogNormalClipped draws LogNormal(mu, sigma) truncated to [lo, hi] by
// resampling (falling back to clamping after a bounded number of tries).
func (s *Stream) LogNormalClipped(mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 32; i++ {
		v := s.LogNormal(mu, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, s.LogNormal(mu, sigma)))
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires rate > 0")
	}
	return s.r.ExpFloat64() / rate
}

// Pareto returns a Pareto(xm, alpha) deviate: xm * U^(-1/alpha).
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := 1 - s.r.Float64() // in (0, 1]
	return xm * math.Pow(u, -1/alpha)
}

// Poisson returns a Poisson(lambda) deviate using Knuth's method for small
// lambda and a normal approximation for large lambda.
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := math.Round(s.Normal(lambda, math.Sqrt(lambda)))
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	limit := math.Exp(-lambda)
	p := 1.0
	n := 0
	for {
		p *= s.r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// TruncGeometric returns a value in [1, max] with P(v) proportional to
// decay^(v-1). decay in (0,1) skews toward small values, which matches the
// COCO-style "most images contain few objects" shape.
func (s *Stream) TruncGeometric(max int, decay float64) int {
	if max < 1 {
		panic("rng: TruncGeometric requires max >= 1")
	}
	total := 0.0
	w := 1.0
	for i := 1; i <= max; i++ {
		total += w
		w *= decay
	}
	u := s.r.Float64() * total
	w = 1.0
	acc := 0.0
	for i := 1; i <= max; i++ {
		acc += w
		if u < acc {
			return i
		}
		w *= decay
	}
	return max
}

// Choice returns an index in [0, len(weights)) drawn proportionally to the
// weights. It panics on an empty or non-positive-sum weight vector.
func (s *Stream) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Choice requires positive total weight")
	}
	u := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
