package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestSplitIsDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("profiler")
	c2 := New(7).Split("profiler")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split is not deterministic for the same label")
		}
	}
	d1 := New(7).Split("adapter")
	d2 := New(7).Split("profiler")
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Float64() == d2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different labels matched %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestLogNormalMedianNearOne(t *testing.T) {
	s := New(11)
	n := 20000
	below := 0
	for i := 0; i < n; i++ {
		if s.LogNormal(0, 0.5) < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("LogNormal(0,s) median fraction below 1 = %v, want ~0.5", frac)
	}
}

func TestLogNormalClippedBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 5000; i++ {
		v := s.LogNormalClipped(0, 1.5, 0.5, 2.0)
		if v < 0.5 || v > 2.0 {
			t.Fatalf("clipped lognormal %v escaped [0.5, 2.0]", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	n := 50000
	total := 0.0
	for i := 0; i < n; i++ {
		total += s.Exp(2.0)
	}
	mean := total / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(19)
	for _, lambda := range []float64{0.5, 4, 100} {
		n := 20000
		total := 0
		for i := 0; i < n; i++ {
			total += s.Poisson(lambda)
		}
		mean := float64(total) / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	if New(1).Poisson(0) != 0 || New(1).Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestParetoLowerBound(t *testing.T) {
	s := New(23)
	for i := 0; i < 5000; i++ {
		if v := s.Pareto(1.5, 2.0); v < 1.5 {
			t.Fatalf("Pareto(1.5, 2) = %v below xm", v)
		}
	}
}

func TestTruncGeometricRangeAndSkew(t *testing.T) {
	s := New(29)
	counts := make([]int, 16)
	for i := 0; i < 30000; i++ {
		v := s.TruncGeometric(15, 0.7)
		if v < 1 || v > 15 {
			t.Fatalf("TruncGeometric out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[5] || counts[5] <= counts[14] {
		t.Fatalf("TruncGeometric not skewed toward small values: %v", counts)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(31)
	counts := [3]int{}
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 7})]++
	}
	if frac := float64(counts[2]) / float64(n); frac < 0.65 || frac > 0.75 {
		t.Fatalf("Choice weight-7 fraction = %v, want ~0.7", frac)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(nil) did not panic")
		}
	}()
	New(1).Choice(nil)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncGeometricPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TruncGeometric(0, ...) did not panic")
		}
	}()
	New(1).TruncGeometric(0, 0.5)
}
