package baseline

import (
	"sync"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/profile"
	"janus/internal/workflow"
)

var (
	setOnce sync.Once
	iaSet   *profile.Set
)

func iaProfiles(t *testing.T) *profile.Set {
	t.Helper()
	setOnce.Do(func() {
		coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
		if err != nil {
			t.Fatal(err)
		}
		p, err := profile.NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), 13)
		if err != nil {
			t.Fatal(err)
		}
		p.SamplesPerConfig = 800
		set, err := p.ProfileWorkflow(workflow.IntelligentAssistant(), 1)
		if err != nil {
			t.Fatal(err)
		}
		iaSet = set
	})
	if iaSet == nil {
		t.Fatal("profiling failed earlier")
	}
	return iaSet
}

func totalCores(f *platform.Fixed) int {
	total := 0
	for _, k := range f.Sizes {
		total += k
	}
	return total
}

func TestGrandSLAMIdenticalSizesMeetSLO(t *testing.T) {
	set := iaProfiles(t)
	f, err := GrandSLAM(set, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sizes) != 3 {
		t.Fatalf("sizes = %v", f.Sizes)
	}
	k := f.Sizes[0]
	for _, s := range f.Sizes {
		if s != k {
			t.Fatalf("GrandSLAM sizes not identical: %v", f.Sizes)
		}
	}
	total := 0
	for i := 0; i < set.Len(); i++ {
		total += set.At(i).LMs(99, k)
	}
	if total > 3000 {
		t.Fatalf("P99 sum %dms exceeds SLO", total)
	}
	// Minimality: one step smaller must not fit.
	if k > 1000 {
		smaller := 0
		for i := 0; i < set.Len(); i++ {
			smaller += set.At(i).LMs(99, k-100)
		}
		if smaller <= 3000 {
			t.Fatalf("GrandSLAM size %d not minimal", k)
		}
	}
}

func TestGrandSLAMInfeasibleSLO(t *testing.T) {
	if _, err := GrandSLAM(iaProfiles(t), 100*time.Millisecond); err == nil {
		t.Fatal("infeasible SLO accepted")
	}
	if _, err := GrandSLAMPlus(iaProfiles(t), 100*time.Millisecond); err == nil {
		t.Fatal("infeasible SLO accepted")
	}
}

func TestGrandSLAMPlusAtMostGrandSLAM(t *testing.T) {
	set := iaProfiles(t)
	for _, slo := range []time.Duration{3 * time.Second, 4 * time.Second, 5 * time.Second} {
		gs, err := GrandSLAM(set, slo)
		if err != nil {
			t.Fatal(err)
		}
		gsp, err := GrandSLAMPlus(set, slo)
		if err != nil {
			t.Fatal(err)
		}
		if totalCores(gsp) > totalCores(gs) {
			t.Fatalf("SLO %v: GrandSLAM+ (%d) above GrandSLAM (%d)", slo, totalCores(gsp), totalCores(gs))
		}
		// The plan still meets the P99-sum constraint.
		total := 0
		for i, k := range gsp.Sizes {
			total += set.At(i).LMs(99, k)
		}
		if total > int(slo/time.Millisecond) {
			t.Fatalf("GrandSLAM+ plan misses SLO: %dms", total)
		}
	}
}

func TestGrandSLAMPlusMinimality(t *testing.T) {
	set := iaProfiles(t)
	gsp, err := GrandSLAMPlus(set, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// No single stage can shrink by one step and still fit.
	for j := range gsp.Sizes {
		if gsp.Sizes[j] <= 1000 {
			continue
		}
		total := 0
		for i, k := range gsp.Sizes {
			if i == j {
				k -= 100
			}
			total += set.At(i).LMs(99, k)
		}
		if total <= 3000 {
			t.Fatalf("stage %d could shrink: %v", j, gsp.Sizes)
		}
	}
}

func TestORIONCheaperThanGrandSLAMPlus(t *testing.T) {
	set := iaProfiles(t)
	gsp, err := GrandSLAMPlus(set, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	orion, err := ORION(set, 3*time.Second, ORIONConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if totalCores(orion) >= totalCores(gsp) {
		t.Fatalf("ORION (%d) not below GrandSLAM+ (%d): distribution-awareness buys nothing",
			totalCores(orion), totalCores(gsp))
	}
	if orion.System != "orion" {
		t.Fatalf("system name = %q", orion.System)
	}
}

func TestORIONDeterministic(t *testing.T) {
	set := iaProfiles(t)
	a, err := ORION(set, 3*time.Second, ORIONConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ORION(set, 3*time.Second, ORIONConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("ORION not deterministic: %v vs %v", a.Sizes, b.Sizes)
		}
	}
}

func TestORIONInfeasible(t *testing.T) {
	if _, err := ORION(iaProfiles(t), 100*time.Millisecond, ORIONConfig{}); err == nil {
		t.Fatal("infeasible SLO accepted")
	}
}

func iaRequests(t *testing.T, n int) []*platform.Request {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := platform.GenerateWorkload(platform.WorkloadConfig{
		Workflow:          workflow.IntelligentAssistant(),
		Functions:         perfmodel.Catalog(),
		N:                 n,
		Batch:             1,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		Seed:              21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestOptimalPlansMeetSLOAndAreMinimal(t *testing.T) {
	o, err := NewOptimal(workflow.IntelligentAssistant(), perfmodel.Catalog(), profile.DefaultGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fns := []*perfmodel.Function{
		perfmodel.ObjectDetection(), perfmodel.QuestionAnswering(), perfmodel.TextToSpeech(),
	}
	for _, req := range iaRequests(t, 200) {
		var plan [3]int
		total := 0
		for stage := 0; stage < 3; stage++ {
			k, hit := o.Allocate(req, stage, 0)
			if !hit {
				t.Fatal("oracle reported a miss")
			}
			plan[stage] = k
			total += k
		}
		// The plan's actual latency fits the SLO (or the request was
		// infeasible and the oracle sprints at Kmax).
		var latency time.Duration
		for stage, f := range fns {
			latency += f.Latency(req.Draws[stage][0], plan[stage])
		}
		atMax := plan[0] == 3000 && plan[1] == 3000 && plan[2] == 3000
		if latency > 3*time.Second && !atMax {
			t.Fatalf("request %d: plan %v misses SLO (%v) without sprinting", req.ID, plan, latency)
		}
		if total < 3000 {
			t.Fatalf("request %d: plan %v below the grid floor", req.ID, plan)
		}
	}
}

func TestOptimalCheapestAmongFeasibleFixedPlans(t *testing.T) {
	// Spot-check oracle optimality by exhaustive search on a coarse grid.
	coarse := profile.Grid{Min: 1000, Max: 3000, Step: 500}
	o, err := NewOptimal(workflow.IntelligentAssistant(), perfmodel.Catalog(), coarse, 0)
	if err != nil {
		t.Fatal(err)
	}
	fns := []*perfmodel.Function{
		perfmodel.ObjectDetection(), perfmodel.QuestionAnswering(), perfmodel.TextToSpeech(),
	}
	levels := coarse.Levels()
	for _, req := range iaRequests(t, 50) {
		oracleTotal := 0
		for stage := 0; stage < 3; stage++ {
			k, _ := o.Allocate(req, stage, 0)
			oracleTotal += k
		}
		best := 1 << 30
		for _, k0 := range levels {
			for _, k1 := range levels {
				for _, k2 := range levels {
					lat := fns[0].Latency(req.Draws[0][0], k0) +
						fns[1].Latency(req.Draws[1][0], k1) +
						fns[2].Latency(req.Draws[2][0], k2)
					// The oracle rounds latencies up by <=1ms per stage;
					// mirror that conservatism for a fair comparison.
					if lat+3*time.Millisecond <= 3*time.Second && k0+k1+k2 < best {
						best = k0 + k1 + k2
					}
				}
			}
		}
		if best == 1<<30 {
			continue // infeasible request; oracle sprints
		}
		if oracleTotal > best {
			t.Fatalf("request %d: oracle %d above exhaustive best %d", req.ID, oracleTotal, best)
		}
	}
}

func TestOptimalCachesPlans(t *testing.T) {
	o, err := NewOptimal(workflow.IntelligentAssistant(), perfmodel.Catalog(), profile.DefaultGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	req := iaRequests(t, 1)[0]
	a, _ := o.Allocate(req, 0, 0)
	b, _ := o.Allocate(req, 0, 0)
	if a != b {
		t.Fatal("plan changed across calls")
	}
	if o.Name() != "optimal" {
		t.Fatal("name changed")
	}
}

func TestNewOptimalValidation(t *testing.T) {
	if _, err := NewOptimal(workflow.IntelligentAssistant(), map[string]*perfmodel.Function{}, profile.DefaultGrid(), 0); err == nil {
		t.Error("missing functions accepted")
	}
	if _, err := NewOptimal(workflow.IntelligentAssistant(), perfmodel.Catalog(), profile.Grid{}, 0); err == nil {
		t.Error("invalid grid accepted")
	}
	// Arbitrary DAGs are in scope now: a partial join plans per layer of
	// its group DAG.
	nodes := []workflow.Node{{Name: "a", Function: "od"}, {Name: "b", Function: "qa"}, {Name: "c", Function: "ts"}, {Name: "d", Function: "ico"}}
	partial, err := workflow.New("partial", time.Second, nodes, [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOptimal(partial, perfmodel.Catalog(), profile.DefaultGrid(), 0); err != nil {
		t.Errorf("general DAG rejected: %v", err)
	}
	fan, err := workflow.NewSeriesParallel("fan", time.Second, [][]string{{"od"}, {"qa", "ts"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOptimal(fan, perfmodel.Catalog(), profile.DefaultGrid(), 0); err != nil {
		t.Errorf("fork-join workflow rejected: %v", err)
	}
}

func TestMinSumSizesEdgeCases(t *testing.T) {
	set := iaProfiles(t)
	grid := set.At(0).Grid
	if _, ok := minSumSizes(set.Profiles, grid, -5); ok {
		t.Error("negative budget feasible")
	}
	if _, ok := minSumSizes(set.Profiles, grid, 0); ok {
		t.Error("zero budget feasible")
	}
	sizes, ok := minSumSizes(set.Profiles, grid, 100000)
	if !ok {
		t.Fatal("huge budget infeasible")
	}
	for _, k := range sizes {
		if k != 1000 {
			t.Fatalf("huge budget sizes = %v, want all minimum", sizes)
		}
	}
}
