// Package baseline implements the serving systems Janus is evaluated
// against (§V-A):
//
//   - GrandSLAM: early binding with one identical size for every function
//     in the workflow, the cheapest size whose P99 latencies sum within
//     the SLO along the layered critical path.
//   - GrandSLAM+: the paper's enhanced variant that lifts the identical-
//     size constraint — the cheapest per-layer sizes whose P99s sum
//     within the SLO.
//   - ORION: distribution-aware early binding. Instead of summing
//     per-function P99s (which double-counts tail mass), ORION models the
//     end-to-end latency distribution by convolving per-function empirical
//     distributions and sizes against the P99 of the convolution.
//   - Optimal: the clairvoyant late-binding lower bound — for each request
//     it knows the exact latency the request would have at every
//     allocation and picks the cheapest plan meeting the SLO.
//
// Janus, Janus-, and Janus+ come from packages synth/adapter; this package
// covers everything else.
package baseline

import (
	"fmt"
	"sync"
	"time"

	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/profile"
	"janus/internal/rng"
	"janus/internal/stats"
	"janus/internal/workflow"
)

// layerPlan maps the workflow's layered critical-path decomposition: the
// layer sequence of the whole DAG (group 0's cone) plus the layer index of
// every decision group, so per-layer size vectors expand into the
// per-group plans the platform's Allocator interface consumes. For chains
// and series-parallel workflows every layer holds exactly one group and
// the expansion is the identity.
type layerPlan struct {
	// seq holds the layer composite profiles, in execution order.
	seq []*profile.FunctionProfile
	// layerOf maps group index -> layer index.
	layerOf []int
}

func newLayerPlan(set *profile.Set) (*layerPlan, error) {
	seq, err := set.ConeProfiles(0)
	if err != nil {
		return nil, err
	}
	layers := set.Workflow.GroupConeLayers(0)
	lp := &layerPlan{seq: seq, layerOf: make([]int, set.Len())}
	for d, layer := range layers {
		for _, g := range layer {
			lp.layerOf[g] = d
		}
	}
	return lp, nil
}

// expand turns a per-layer size vector into a per-group one.
func (lp *layerPlan) expand(perLayer []int) []int {
	sizes := make([]int, len(lp.layerOf))
	for g, d := range lp.layerOf {
		sizes[g] = perLayer[d]
	}
	return sizes
}

// GrandSLAM sizes the workflow with one identical allocation (its
// published constraint) at P99: the cheapest size whose per-layer P99
// latencies sum within the SLO along the layered critical path.
func GrandSLAM(set *profile.Set, slo time.Duration) (*platform.Fixed, error) {
	lp, err := newLayerPlan(set)
	if err != nil {
		return nil, err
	}
	sloMs := int(slo / time.Millisecond)
	grid := set.At(0).Grid
	for _, k := range grid.Levels() {
		total := 0
		for _, fp := range lp.seq {
			total += fp.LMs(99, k)
		}
		if total <= sloMs {
			sizes := make([]int, set.Len())
			for i := range sizes {
				sizes[i] = k
			}
			return &platform.Fixed{System: "grandslam", Sizes: sizes}, nil
		}
	}
	return nil, fmt.Errorf("baseline: GrandSLAM cannot meet SLO %v even at Kmax", slo)
}

// GrandSLAMPlus sizes each layer independently: the cheapest size vector
// whose P99 latencies sum within the SLO along the layered critical path,
// expanded to one size per decision group.
func GrandSLAMPlus(set *profile.Set, slo time.Duration) (*platform.Fixed, error) {
	lp, err := newLayerPlan(set)
	if err != nil {
		return nil, err
	}
	perLayer, ok := minSumSizes(lp.seq, set.At(0).Grid, int(slo/time.Millisecond))
	if !ok {
		return nil, fmt.Errorf("baseline: GrandSLAM+ cannot meet SLO %v even at Kmax", slo)
	}
	return &platform.Fixed{System: "grandslam+", Sizes: lp.expand(perLayer)}, nil
}

// minSumSizes solves min sum(k_i) s.t. sum L_i(99, k_i) <= budgetMs by
// dynamic programming over the layer sequence and budget.
func minSumSizes(seq []*profile.FunctionProfile, grid profile.Grid, budgetMs int) ([]int, bool) {
	if budgetMs < 0 {
		return nil, false
	}
	n := len(seq)
	levels := grid.Levels()
	width := budgetMs + 1
	// dp[t] for the current suffix; rebuilt from the back.
	dp := make([][]int32, n+1)
	choice := make([][]int16, n)
	dp[n] = make([]int32, width)
	for j := n - 1; j >= 0; j-- {
		fp := seq[j]
		dp[j] = make([]int32, width)
		choice[j] = make([]int16, width)
		for t := 0; t < width; t++ {
			best := int32(-1)
			bestKi := int16(-1)
			for ki := len(levels) - 1; ki >= 0; ki-- {
				lat := fp.LMs(99, levels[ki])
				if lat > t {
					break
				}
				if dp[j+1][t-lat] < 0 {
					continue
				}
				cand := int32(levels[ki]) + dp[j+1][t-lat]
				if best < 0 || cand < best {
					best, bestKi = cand, int16(ki)
				}
			}
			dp[j][t] = best
			choice[j][t] = bestKi
		}
	}
	if dp[0][budgetMs] < 0 {
		return nil, false
	}
	sizes := make([]int, n)
	t := budgetMs
	for j := 0; j < n; j++ {
		ki := choice[j][t]
		sizes[j] = levels[ki]
		t -= seq[j].LMs(99, sizes[j])
	}
	return sizes, true
}

// ORIONConfig tunes the distribution-aware search.
type ORIONConfig struct {
	// Trials is the Monte-Carlo sample count per end-to-end distribution
	// evaluation (common random numbers across evaluations).
	Trials int
	// Correlation in [0, 1] is the stage-correlation mixture weight of the
	// end-to-end model, matching the workload's copula: with this
	// probability a trial draws the same quantile rank at every stage.
	// ORION's published strength is exactly that it models the workflow's
	// end-to-end latency distribution rather than summing per-stage P99s.
	Correlation float64
	// Seed drives the Monte-Carlo draws.
	Seed uint64
}

// ORION sizes the chain distribution-aware: starting from the GrandSLAM+
// solution (feasible by construction, since the P99 sum over-estimates the
// end-to-end P99), it greedily shrinks allocations while the P99 of the
// convolved end-to-end distribution still meets the SLO.
func ORION(set *profile.Set, slo time.Duration, cfg ORIONConfig) (*platform.Fixed, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 4000
	}
	if cfg.Correlation < 0 || cfg.Correlation > 1 {
		return nil, fmt.Errorf("baseline: ORION correlation %v outside [0, 1]", cfg.Correlation)
	}
	start, err := GrandSLAMPlus(set, slo)
	if err != nil {
		return nil, fmt.Errorf("baseline: ORION needs a feasible starting point: %w", err)
	}
	n := set.Len()
	grid := set.At(0).Grid
	for j := 0; j < n; j++ {
		if set.At(j).Sample(grid.Min) == nil {
			return nil, fmt.Errorf("baseline: ORION requires profiles with raw samples (stage %d)", j)
		}
	}
	// Pre-draw quantile ranks once (common random numbers): evaluation is
	// deterministic and candidate comparisons are paired. A correlated
	// trial uses one rank for all stages (comonotonic); an independent
	// trial draws per-stage ranks.
	stream := rng.New(cfg.Seed).Split("orion")
	ranks := make([][]float64, cfg.Trials)
	for t := range ranks {
		ranks[t] = make([]float64, n)
		if stream.Float64() < cfg.Correlation {
			u := stream.Float64()
			for j := 0; j < n; j++ {
				ranks[t][j] = u
			}
		} else {
			for j := 0; j < n; j++ {
				ranks[t][j] = stream.Float64()
			}
		}
	}
	sloMs := float64(slo / time.Millisecond)
	p99 := func(sizes []int) float64 {
		sums := make([]float64, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			total := 0.0
			for j := 0; j < n; j++ {
				vals := set.At(j).Sample(sizes[j]).Values()
				idx := int(ranks[t][j] * float64(len(vals)))
				if idx >= len(vals) {
					idx = len(vals) - 1
				}
				total += vals[idx]
			}
			sums[t] = total
		}
		return stats.NewSample(sums).Percentile(99)
	}
	sizes := append([]int(nil), start.Sizes...)
	if p99(sizes) > sloMs {
		// The P99-sum start should dominate the convolved P99; if sampling
		// noise says otherwise, fall back to the safe start.
		return &platform.Fixed{System: "orion", Sizes: sizes}, nil
	}
	for improved := true; improved; {
		improved = false
		// Shrink the stage that keeps the most headroom after shrinking.
		bestStage, bestP99 := -1, 0.0
		for j := 0; j < n; j++ {
			if sizes[j] <= grid.Min {
				continue
			}
			sizes[j] -= grid.Step
			v := p99(sizes)
			sizes[j] += grid.Step
			if v <= sloMs && (bestStage < 0 || v < bestP99) {
				bestStage, bestP99 = j, v
			}
		}
		if bestStage >= 0 {
			sizes[bestStage] -= grid.Step
			improved = true
		}
	}
	return &platform.Fixed{System: "orion", Sizes: sizes}, nil
}

// Optimal is the clairvoyant late-binding oracle, generalized to per-node
// plans over arbitrary DAGs. For each request it reads the pre-sampled
// draws (which make latency a pure function of allocation), solves
// min sum(B_i * k_i) s.t. sum l_i(k_i) <= SLO by DP over the workflow's
// layered critical path, and serves the plan. A layer completes at its
// slowest member node, so its latency at allocation k is the maximum
// member latency and its cost is k times the member count; the per-layer
// choice expands to one size per decision group. For chains and fork-join
// workflows every layer is one stage, so this is exactly the classic
// per-stage oracle. Requests infeasible even at Kmax run entirely at Kmax.
type Optimal struct {
	// members holds, per layer, the (group, member) coordinates and
	// latency model of every node executing in that layer.
	members [][]layerMember
	// layerOf maps group index -> layer index.
	layerOf  []int
	grid     profile.Grid
	headroom time.Duration

	mu    sync.Mutex
	plans map[int][]int
}

type layerMember struct {
	group, branch int
	fn            *perfmodel.Function
}

// NewOptimal builds the oracle for any workflow DAG. headroom is
// subtracted from the SLO before planning, covering platform costs outside
// function execution (pod specialization, adapter decisions).
func NewOptimal(w *workflow.Workflow, fns map[string]*perfmodel.Function, grid profile.Grid, headroom time.Duration) (*Optimal, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if headroom < 0 {
		return nil, fmt.Errorf("baseline: negative headroom %v", headroom)
	}
	groups := w.DecisionGroups()
	layers := w.GroupConeLayers(0)
	o := &Optimal{
		grid:     grid,
		headroom: headroom,
		layerOf:  make([]int, len(groups)),
		members:  make([][]layerMember, len(layers)),
		plans:    make(map[int][]int),
	}
	for d, layer := range layers {
		for _, g := range layer {
			o.layerOf[g] = d
			for b, node := range groups[g].Nodes {
				f, ok := fns[node.Function]
				if !ok {
					return nil, fmt.Errorf("baseline: Optimal missing function %q", node.Function)
				}
				o.members[d] = append(o.members[d], layerMember{group: g, branch: b, fn: f})
			}
		}
	}
	return o, nil
}

// Name implements platform.Allocator.
func (o *Optimal) Name() string { return "optimal" }

// Allocate implements platform.Allocator.
func (o *Optimal) Allocate(req *platform.Request, group int, _ time.Duration) (int, bool) {
	o.mu.Lock()
	plan, ok := o.plans[req.ID]
	o.mu.Unlock()
	if !ok {
		plan = o.solve(req)
		o.mu.Lock()
		o.plans[req.ID] = plan
		o.mu.Unlock()
	}
	return plan[o.layerOf[group]], true
}

// solve runs the per-request DP over (layer, remaining ms).
func (o *Optimal) solve(req *platform.Request) []int {
	n := len(o.members)
	levels := o.grid.Levels()
	sloMs := int((req.Workflow.SLO() - o.headroom) / time.Millisecond)
	if sloMs < 0 {
		sloMs = 0
	}
	// latMs[d][ki]: the request's actual layer latency at each allocation —
	// the slowest member, since the joins wait for it — rounded up so the
	// plan is never optimistic.
	latMs := make([][]int, n)
	minSum, maxSum := 0, 0
	for d, members := range o.members {
		latMs[d] = make([]int, len(levels))
		for ki, k := range levels {
			var worst time.Duration
			for _, m := range members {
				if l := m.fn.Latency(req.Draws[m.group][m.branch], k); l > worst {
					worst = l
				}
			}
			latMs[d][ki] = int(worst/time.Millisecond) + 1
		}
		minSum += latMs[d][0]
		maxSum += latMs[d][len(levels)-1]
	}
	// Fast paths: the all-minimum plan is the global cheapest when it
	// fits; nothing helps when even all-Kmax misses.
	if minSum <= sloMs {
		plan := make([]int, n)
		for d := range plan {
			plan[d] = o.grid.Min
		}
		return plan
	}
	if maxSum > sloMs {
		plan := make([]int, n)
		for d := range plan {
			plan[d] = o.grid.Max
		}
		return plan
	}
	width := sloMs + 1
	dp := make([][]int32, n+1)
	choice := make([][]int16, n)
	dp[n] = make([]int32, width)
	for d := n - 1; d >= 0; d-- {
		dp[d] = make([]int32, width)
		choice[d] = make([]int16, width)
		pods := int32(len(o.members[d]))
		for t := 0; t < width; t++ {
			best := int32(-1)
			bestKi := int16(-1)
			for ki := len(levels) - 1; ki >= 0; ki-- {
				lat := latMs[d][ki]
				if lat > t {
					break
				}
				if dp[d+1][t-lat] < 0 {
					continue
				}
				cand := int32(levels[ki])*pods + dp[d+1][t-lat]
				if best < 0 || cand < best {
					best, bestKi = cand, int16(ki)
				}
			}
			dp[d][t] = best
			choice[d][t] = bestKi
		}
	}
	plan := make([]int, n)
	if dp[0][sloMs] < 0 {
		// Infeasible request: sprint at Kmax to minimize the violation.
		for d := range plan {
			plan[d] = o.grid.Max
		}
		return plan
	}
	t := sloMs
	for d := 0; d < n; d++ {
		ki := choice[d][t]
		plan[d] = levels[ki]
		t -= latMs[d][ki]
	}
	return plan
}
