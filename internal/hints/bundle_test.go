package hints

import (
	"strings"
	"testing"
	"time"
)

func validBundle() *Bundle {
	t0, _ := Condense(&RawTable{Suffix: 0, Weight: 1, Hints: []Hint{
		{BudgetMs: 2000, HeadMillicores: 3000, HeadPercentile: 99},
		{BudgetMs: 2001, HeadMillicores: 2900, HeadPercentile: 94},
	}})
	t1, _ := Condense(&RawTable{Suffix: 1, Weight: 1, Hints: []Hint{
		{BudgetMs: 1000, HeadMillicores: 2500, HeadPercentile: 99},
	}})
	return &Bundle{
		Workflow:      "ia",
		Batch:         1,
		Weight:        1,
		SLOMs:         3000,
		MaxMillicores: 3000,
		Tables:        []*Table{t0, t1},
	}
}

func TestBundleValidateOK(t *testing.T) {
	if err := validBundle().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBundleValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Bundle)
		errHas string
	}{
		{"no workflow", func(b *Bundle) { b.Workflow = "" }, "workflow"},
		{"bad batch", func(b *Bundle) { b.Batch = 0 }, "batch"},
		{"bad slo", func(b *Bundle) { b.SLOMs = 0 }, "SLO"},
		{"no ceiling", func(b *Bundle) { b.MaxMillicores = 0 }, "ceiling"},
		{"no tables", func(b *Bundle) { b.Tables = nil }, "tables"},
		{"nil table", func(b *Bundle) { b.Tables[1] = nil }, "missing"},
		{"suffix mismatch", func(b *Bundle) { b.Tables[1].Suffix = 5 }, "suffix"},
		{"invalid table", func(b *Bundle) { b.Tables[0].Ranges[0].Millicores = -1 }, "table 0"},
	}
	for _, c := range cases {
		b := validBundle()
		c.mutate(b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errHas)
		}
	}
}

func TestBundleAccessors(t *testing.T) {
	b := validBundle()
	if b.Stages() != 2 {
		t.Errorf("Stages = %d", b.Stages())
	}
	if b.SLO() != 3*time.Second {
		t.Errorf("SLO = %v", b.SLO())
	}
	if b.TotalRanges() != 3 {
		t.Errorf("TotalRanges = %d", b.TotalRanges())
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := validBundle()
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workflow != "ia" || back.Stages() != 2 || back.TotalRanges() != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	r, ok := back.Tables[0].Lookup(2 * time.Second)
	if !ok || r.Millicores != 3000 {
		t.Fatalf("round-tripped lookup = %+v, %v", r, ok)
	}
}

// shapedBundle extends validBundle with one width-variant table on
// group 1: the variant covers tighter budgets than the base.
func shapedBundle() *Bundle {
	b := validBundle()
	v, _ := Condense(&RawTable{Suffix: 1, Weight: 1, Hints: []Hint{
		{BudgetMs: 600, HeadMillicores: 2800, HeadPercentile: 99},
		{BudgetMs: 601, HeadMillicores: 1800, HeadPercentile: 99},
	}})
	b.Shaped = map[int]map[string]*Table{1: {"w=1": v}}
	return b
}

func TestBundleShapedValidation(t *testing.T) {
	if err := shapedBundle().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Bundle)
		errHas string
	}{
		{"group out of range", func(b *Bundle) { b.Shaped[9] = b.Shaped[1]; delete(b.Shaped, 1) }, "group 9"},
		{"empty variant map", func(b *Bundle) { b.Shaped[1] = map[string]*Table{} }, "empty shape-variant"},
		{"empty shape key", func(b *Bundle) { b.Shaped[1][""] = b.Shaped[1]["w=1"]; delete(b.Shaped[1], "w=1") }, "empty shape key"},
		{"nil variant table", func(b *Bundle) { b.Shaped[1]["w=1"] = nil }, "missing"},
		{"variant suffix mismatch", func(b *Bundle) { b.Shaped[1]["w=1"].Suffix = 0 }, "suffix"},
		{"invalid variant table", func(b *Bundle) { b.Shaped[1]["w=1"].Ranges[0].Millicores = -1 }, "shape"},
	}
	for _, c := range cases {
		b := shapedBundle()
		c.mutate(b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errHas)
		}
	}
}

func TestShapedTableLookupAndRoundTrip(t *testing.T) {
	b := shapedBundle()
	if _, ok := b.ShapedTable(1, "w=2"); ok {
		t.Fatal("unknown shape reported covered")
	}
	if _, ok := b.ShapedTable(0, "w=1"); ok {
		t.Fatal("shape on unshaped group reported covered")
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := back.ShapedTable(1, "w=1")
	if !ok {
		t.Fatal("round trip lost the shaped table")
	}
	r, ok := v.Lookup(601 * time.Millisecond)
	if !ok || r.Millicores != 1800 {
		t.Fatalf("round-tripped shaped lookup = %+v, %v", r, ok)
	}
}

// TestStaticBundleSerdeUnchanged pins the additive-field claim: a bundle
// without shaped tables marshals without any trace of the new field, so
// static bundles' wire format is exactly what it was before dynamic
// orchestration existed.
func TestStaticBundleSerdeUnchanged(t *testing.T) {
	data, err := validBundle().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "shaped") {
		t.Fatalf("static bundle JSON mentions shaped tables: %s", data)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	b := validBundle()
	b.Workflow = ""
	if _, err := b.Marshal(); err == nil {
		t.Fatal("invalid bundle marshaled")
	}
}

func TestParseBundleRejectsBadData(t *testing.T) {
	if _, err := ParseBundle([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ParseBundle([]byte(`{"workflow":"w","batch":1,"weight":1,"slo_ms":100,"max_millicores":100,"tables":[{"suffix":3,"weight":1}]}`)); err == nil {
		t.Error("suffix-mismatched bundle accepted")
	}
}
