package hints

import (
	"testing"
	"testing/quick"
	"time"

	"janus/internal/rng"
)

func rawFromSizes(sizes []int) *RawTable {
	rt := &RawTable{Suffix: 0, Weight: 1}
	for i, k := range sizes {
		rt.Hints = append(rt.Hints, Hint{BudgetMs: 100 + i, HeadMillicores: k, HeadPercentile: 99})
	}
	return rt
}

func TestCondenseFusesRuns(t *testing.T) {
	rt := rawFromSizes([]int{3000, 3000, 2000, 2000, 2000, 1000})
	tab, err := Condense(rt)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 3 {
		t.Fatalf("condensed to %d ranges, want 3", tab.Size())
	}
	want := []Range{
		{StartMs: 100, EndMs: 101, Millicores: 3000, Percentile: 99},
		{StartMs: 102, EndMs: 104, Millicores: 2000, Percentile: 99},
		{StartMs: 105, EndMs: 105, Millicores: 1000, Percentile: 99},
	}
	for i, w := range want {
		if tab.Ranges[i] != w {
			t.Errorf("range %d = %+v, want %+v", i, tab.Ranges[i], w)
		}
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCondenseNonAdjacentEqualSizesStaySeparate(t *testing.T) {
	// Algorithm 2 fuses only adjacent runs: 2000 appears twice but split
	// by a 1000 run, so three ranges result.
	rt := rawFromSizes([]int{2000, 1000, 2000})
	tab, err := Condense(rt)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 3 {
		t.Fatalf("condensed to %d ranges, want 3", tab.Size())
	}
}

func TestCondenseEmpty(t *testing.T) {
	tab, err := Condense(&RawTable{Suffix: 1, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 0 || tab.Suffix != 1 || tab.Weight != 2 {
		t.Fatalf("empty condense = %+v", tab)
	}
	if _, ok := tab.Lookup(time.Second); ok {
		t.Fatal("lookup on empty table should miss")
	}
}

func TestCondensePreservesCoverage(t *testing.T) {
	// Property: every raw budget must look up to exactly its raw head size.
	f := func(seed uint64) bool {
		st := rng.New(seed)
		n := 50 + st.IntN(200)
		sizes := make([]int, n)
		cur := 3000
		for i := range sizes {
			if st.Float64() < 0.1 && cur > 1000 {
				cur -= 100
			}
			sizes[i] = cur
		}
		rt := rawFromSizes(sizes)
		tab, err := Condense(rt)
		if err != nil {
			return false
		}
		for _, h := range rt.Hints {
			r, ok := tab.Lookup(time.Duration(h.BudgetMs) * time.Millisecond)
			if !ok || r.Millicores != h.HeadMillicores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupBoundaries(t *testing.T) {
	tab, err := Condense(rawFromSizes([]int{3000, 3000, 1500}))
	if err != nil {
		t.Fatal(err)
	}
	// Below coverage: miss (adapter escalates to Kmax).
	if _, ok := tab.Lookup(99 * time.Millisecond); ok {
		t.Fatal("budget below table should miss")
	}
	// Above coverage: the cheapest (highest-budget) plan applies.
	r, ok := tab.Lookup(10 * time.Second)
	if !ok || r.Millicores != 1500 {
		t.Fatalf("budget above table -> %+v, %v", r, ok)
	}
	// Exact boundaries hit their own range.
	if r, _ := tab.Lookup(101 * time.Millisecond); r.Millicores != 3000 {
		t.Fatalf("boundary 101ms -> %+v", r)
	}
	if r, _ := tab.Lookup(102 * time.Millisecond); r.Millicores != 1500 {
		t.Fatalf("boundary 102ms -> %+v", r)
	}
	// Sub-millisecond budgets truncate downward (conservative).
	if _, ok := tab.Lookup(100*time.Millisecond - time.Microsecond); ok {
		t.Fatal("99.999ms should truncate to 99ms and miss")
	}
}

func TestLookupGapTakesNextRange(t *testing.T) {
	tab := &Table{
		Weight: 1,
		Ranges: []Range{
			{StartMs: 100, EndMs: 110, Millicores: 3000, Percentile: 99},
			{StartMs: 120, EndMs: 130, Millicores: 2000, Percentile: 99},
		},
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	r, ok := tab.Lookup(115 * time.Millisecond)
	if !ok || r.Millicores != 2000 {
		t.Fatalf("gap lookup -> %+v, %v; want the next range above", r, ok)
	}
}

func TestRawTableValidate(t *testing.T) {
	bad := []*RawTable{
		{Suffix: -1, Weight: 1},
		{Suffix: 0, Weight: 0},
		{Suffix: 0, Weight: 1, Hints: []Hint{{BudgetMs: 5, HeadMillicores: 100, HeadPercentile: 99}, {BudgetMs: 5, HeadMillicores: 100, HeadPercentile: 99}}},
		{Suffix: 0, Weight: 1, Hints: []Hint{{BudgetMs: 5, HeadMillicores: 0, HeadPercentile: 99}}},
		{Suffix: 0, Weight: 1, Hints: []Hint{{BudgetMs: 5, HeadMillicores: 100, HeadPercentile: 0}}},
	}
	for i, rt := range bad {
		if err := rt.Validate(); err == nil {
			t.Errorf("bad raw table %d accepted", i)
		}
	}
}

func TestTableValidate(t *testing.T) {
	bad := []*Table{
		{Suffix: -1, Weight: 1},
		{Suffix: 0, Weight: 0},
		{Suffix: 0, Weight: 1, Ranges: []Range{{StartMs: 10, EndMs: 5, Millicores: 100}}},
		{Suffix: 0, Weight: 1, Ranges: []Range{{StartMs: 0, EndMs: 10, Millicores: 100}, {StartMs: 10, EndMs: 20, Millicores: 200}}},
		{Suffix: 0, Weight: 1, Ranges: []Range{{StartMs: 0, EndMs: 10, Millicores: 0}}},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("bad table %d accepted", i)
		}
	}
}

func TestMinMaxBudget(t *testing.T) {
	tab, err := Condense(rawFromSizes([]int{2000, 2000, 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if min, ok := tab.MinBudgetMs(); !ok || min != 100 {
		t.Fatalf("MinBudgetMs = %d, %v", min, ok)
	}
	if max, ok := tab.MaxBudgetMs(); !ok || max != 102 {
		t.Fatalf("MaxBudgetMs = %d, %v", max, ok)
	}
	empty := &Table{Weight: 1}
	if _, ok := empty.MinBudgetMs(); ok {
		t.Fatal("empty table has no min budget")
	}
	if _, ok := empty.MaxBudgetMs(); ok {
		t.Fatal("empty table has no max budget")
	}
}

func TestCompressionRatio(t *testing.T) {
	if got := CompressionRatio(1000, 4); got != 0.996 {
		t.Fatalf("CompressionRatio = %v", got)
	}
	if got := CompressionRatio(0, 4); got != 0 {
		t.Fatalf("CompressionRatio(0, _) = %v", got)
	}
}

func TestCondenseRejectsInvalid(t *testing.T) {
	if _, err := Condense(&RawTable{Suffix: 0, Weight: 0}); err == nil {
		t.Fatal("invalid raw table condensed")
	}
}

func TestCondenseDoesNotMutateInput(t *testing.T) {
	rt := &RawTable{Suffix: 0, Weight: 1, Hints: []Hint{
		{BudgetMs: 200, HeadMillicores: 1000, HeadPercentile: 99},
		{BudgetMs: 100, HeadMillicores: 2000, HeadPercentile: 99},
	}}
	// Out-of-order budgets fail validation; fix order first.
	rt.Hints[0], rt.Hints[1] = rt.Hints[1], rt.Hints[0]
	if _, err := Condense(rt); err != nil {
		t.Fatal(err)
	}
	if rt.Hints[0].BudgetMs != 100 {
		t.Fatal("Condense mutated caller hints order")
	}
}
