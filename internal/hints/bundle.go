package hints

import (
	"encoding/json"
	"fmt"
	"time"
)

// Bundle is everything the developer submits to the provider's adapter for
// one (workflow, batch, weight) deployment: a condensed table per
// decision group (covering the group's descendant cone — the chain
// suffix, for chains) plus the escalation ceiling for misses.
type Bundle struct {
	// Workflow names the application.
	Workflow string `json:"workflow"`
	// Batch is the concurrency level the tables cover.
	Batch int `json:"batch"`
	// Weight is the head weight W used at synthesis.
	Weight float64 `json:"weight"`
	// SLOMs is the end-to-end latency objective in milliseconds.
	SLOMs int `json:"slo_ms"`
	// MaxMillicores is the per-function escalation ceiling on table miss.
	MaxMillicores int `json:"max_millicores"`
	// Tables holds one condensed table per decision group, index ==
	// group index (== chain suffix for chains). For dynamic workflows
	// these are the conservative worst-case tables (map members at
	// maximum width) every shape-blind decision falls back to.
	Tables []*Table `json:"tables"`
	// Shaped holds a dynamic workflow's shape-variant tables, keyed by
	// decision-group index and then by the resolved-shape key the serving
	// plane reports at the group's readiness instant ("w=3" when the
	// group's map member drew width 3). Static bundles leave it nil; the
	// field is omitted from JSON then, so static bundle serde is
	// unchanged byte for byte.
	Shaped map[int]map[string]*Table `json:"shaped,omitempty"`
}

// Validate checks bundle invariants.
func (b *Bundle) Validate() error {
	if b.Workflow == "" {
		return fmt.Errorf("hints: bundle needs a workflow name")
	}
	if b.Batch < 1 {
		return fmt.Errorf("hints: bundle batch %d invalid", b.Batch)
	}
	if b.SLOMs <= 0 {
		return fmt.Errorf("hints: bundle SLO %dms invalid", b.SLOMs)
	}
	if b.MaxMillicores <= 0 {
		return fmt.Errorf("hints: bundle needs a positive escalation ceiling")
	}
	if len(b.Tables) == 0 {
		return fmt.Errorf("hints: bundle has no tables")
	}
	for i, t := range b.Tables {
		if t == nil {
			return fmt.Errorf("hints: bundle table %d missing", i)
		}
		if t.Suffix != i {
			return fmt.Errorf("hints: bundle table %d has suffix %d", i, t.Suffix)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("hints: bundle table %d: %w", i, err)
		}
	}
	for g, variants := range b.Shaped {
		if g < 0 || g >= len(b.Tables) {
			return fmt.Errorf("hints: shaped tables for group %d, but bundle has %d groups", g, len(b.Tables))
		}
		if len(variants) == 0 {
			return fmt.Errorf("hints: empty shape-variant map for group %d", g)
		}
		for shape, t := range variants {
			if shape == "" {
				return fmt.Errorf("hints: group %d has a variant with an empty shape key", g)
			}
			if t == nil {
				return fmt.Errorf("hints: group %d shape %q table missing", g, shape)
			}
			if t.Suffix != g {
				return fmt.Errorf("hints: group %d shape %q table has suffix %d", g, shape, t.Suffix)
			}
			if err := t.Validate(); err != nil {
				return fmt.Errorf("hints: group %d shape %q: %w", g, shape, err)
			}
		}
	}
	return nil
}

// ShapedTable returns the variant table for a (group, shape) pair, or
// false when the bundle carries no variant for it — the caller then falls
// back to the group's conservative base table.
func (b *Bundle) ShapedTable(group int, shape string) (*Table, bool) {
	t, ok := b.Shaped[group][shape]
	return t, ok
}

// Stages reports the number of decision groups covered (the chain length
// for chain workflows; the name predates the node-granular engine).
func (b *Bundle) Stages() int { return len(b.Tables) }

// SLO returns the bundle's latency objective.
func (b *Bundle) SLO() time.Duration { return time.Duration(b.SLOMs) * time.Millisecond }

// TotalRanges sums condensed table sizes across suffixes — the paper's
// "total number of hints" (Fig 8).
func (b *Bundle) TotalRanges() int {
	total := 0
	for _, t := range b.Tables {
		total += t.Size()
	}
	return total
}

// Marshal encodes the bundle for submission to the adapter service.
func (b *Bundle) Marshal() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(b)
}

// ParseBundle decodes and validates a submitted bundle.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("hints: invalid bundle JSON: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
