// Package hints defines the artifact at the center of Janus's bilateral
// engagement: the hints table the developer's synthesizer produces offline
// and the provider's adapter searches online.
//
// A raw hint maps one candidate time budget (millisecond granularity) to a
// full allocation plan for a sub-workflow: the descendant cone of one
// decision group of the workflow DAG — for a chain, the classic node
// suffix. Because resource adaptation is discrete (allocations move on a
// 100-millicore grid), long runs of budgets share the same head size
// (Insight-5), and only the head field — the decided group's own
// allocation — is ever consumed at runtime (Insight-6). Condensing
// (Algorithm 2) therefore fuses runs of equal head sizes into
// <start, end, size> ranges, compressing tables by ~99% in the paper
// without losing any adaptation accuracy.
package hints

import (
	"fmt"
	"sort"
	"time"
)

// Hint is one raw synthesizer output: the optimal plan for one budget.
type Hint struct {
	// BudgetMs is the sub-workflow time budget t in milliseconds.
	BudgetMs int `json:"budget_ms"`
	// HeadMillicores is k1, the head function's allocation.
	HeadMillicores int `json:"head_millicores"`
	// HeadPercentile is the percentile p explored for the head.
	HeadPercentile int `json:"head_percentile"`
	// PlanMillicores is the full planned allocation (head first). Only
	// the head entry is binding at runtime; the rest document the plan
	// the expected-cost objective assumed.
	PlanMillicores []int `json:"plan_millicores,omitempty"`
	// ExpectedCost is the objective value (Eq. 4) of the plan.
	ExpectedCost float64 `json:"expected_cost"`
}

// RawTable is the uncondensed output of hints generation for one
// sub-workflow: the descendant cone of one decision group.
type RawTable struct {
	// Suffix is the decision-group index whose cone the table covers. The
	// name is kept from the chain era, where group i's cone is exactly
	// the suffix of the chain starting at node i.
	Suffix int `json:"suffix"`
	// Weight is the head-function weight W the hints were generated with.
	Weight float64 `json:"weight"`
	// Hints is sorted ascending by budget; budgets are unique.
	Hints []Hint `json:"hints"`
}

// Validate checks raw-table invariants.
func (rt *RawTable) Validate() error {
	if rt.Suffix < 0 {
		return fmt.Errorf("hints: negative suffix %d", rt.Suffix)
	}
	if rt.Weight <= 0 {
		return fmt.Errorf("hints: non-positive weight %v", rt.Weight)
	}
	prev := -1
	for i, h := range rt.Hints {
		if h.BudgetMs <= prev {
			return fmt.Errorf("hints: budgets not strictly increasing at index %d", i)
		}
		prev = h.BudgetMs
		if h.HeadMillicores <= 0 {
			return fmt.Errorf("hints: hint %d has non-positive head size", i)
		}
		if h.HeadPercentile < 1 || h.HeadPercentile > 99 {
			return fmt.Errorf("hints: hint %d has percentile %d outside [1, 99]", i, h.HeadPercentile)
		}
	}
	return nil
}

// Range is one condensed hints-table row: budgets in [StartMs, EndMs]
// (inclusive) provision the head function with Millicores.
type Range struct {
	StartMs    int `json:"start_ms"`
	EndMs      int `json:"end_ms"`
	Millicores int `json:"millicores"`
	// Percentile is the head percentile of the highest-budget fused hint,
	// kept for diagnostics (Table II reports it).
	Percentile int `json:"percentile"`
}

// Table is the condensed hints table for one sub-workflow (one decision
// group's descendant cone).
type Table struct {
	// Workflow names the application the table belongs to.
	Workflow string `json:"workflow"`
	// Suffix is the decision-group index whose cone the table covers
	// (the chain-suffix index for chain workflows).
	Suffix int `json:"suffix"`
	// Batch is the concurrency the table was synthesized for.
	Batch int `json:"batch"`
	// Weight is the head weight W.
	Weight float64 `json:"weight"`
	// Ranges is sorted ascending by StartMs with no overlaps.
	Ranges []Range `json:"ranges"`
}

// Condense implements Algorithm 2: sort hints by budget, then fuse adjacent
// hints sharing the head size into ranges, dropping all non-head fields.
func Condense(rt *RawTable) (*Table, error) {
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Suffix: rt.Suffix, Weight: rt.Weight}
	if len(rt.Hints) == 0 {
		return t, nil
	}
	hs := append([]Hint(nil), rt.Hints...)
	sort.Slice(hs, func(i, j int) bool { return hs[i].BudgetMs < hs[j].BudgetMs })
	cur := Range{StartMs: hs[0].BudgetMs, EndMs: hs[0].BudgetMs, Millicores: hs[0].HeadMillicores, Percentile: hs[0].HeadPercentile}
	for _, h := range hs[1:] {
		if h.HeadMillicores == cur.Millicores {
			cur.EndMs = h.BudgetMs
			cur.Percentile = h.HeadPercentile
			continue
		}
		t.Ranges = append(t.Ranges, cur)
		cur = Range{StartMs: h.BudgetMs, EndMs: h.BudgetMs, Millicores: h.HeadMillicores, Percentile: h.HeadPercentile}
	}
	t.Ranges = append(t.Ranges, cur)
	return t, nil
}

// Size reports the number of condensed ranges (the paper's "# of hints").
func (t *Table) Size() int { return len(t.Ranges) }

// MinBudgetMs reports the smallest covered budget, or false when empty.
func (t *Table) MinBudgetMs() (int, bool) {
	if len(t.Ranges) == 0 {
		return 0, false
	}
	return t.Ranges[0].StartMs, true
}

// MaxBudgetMs reports the largest covered budget, or false when empty.
func (t *Table) MaxBudgetMs() (int, bool) {
	if len(t.Ranges) == 0 {
		return 0, false
	}
	return t.Ranges[len(t.Ranges)-1].EndMs, true
}

// Lookup finds the head allocation for a remaining time budget.
//
// Budgets above the explored maximum are served by the highest range: more
// slack than Tmax only makes the cheapest plan safer. Budgets below the
// explored minimum miss — no synthesized plan can meet them, and the
// adapter escalates to maximum resources (§III-D).
func (t *Table) Lookup(budget time.Duration) (Range, bool) {
	if len(t.Ranges) == 0 {
		return Range{}, false
	}
	b := int(budget / time.Millisecond)
	if b < t.Ranges[0].StartMs {
		return Range{}, false
	}
	last := t.Ranges[len(t.Ranges)-1]
	if b >= last.EndMs {
		return last, true
	}
	// Binary search for the first range ending at or after b.
	idx := sort.Search(len(t.Ranges), func(i int) bool { return t.Ranges[i].EndMs >= b })
	r := t.Ranges[idx]
	if b >= r.StartMs {
		return r, true
	}
	// b falls in a gap between ranges: take the next (more conservative)
	// range above it.
	return r, true
}

// Validate checks condensed-table invariants.
func (t *Table) Validate() error {
	if t.Suffix < 0 {
		return fmt.Errorf("hints: negative suffix %d", t.Suffix)
	}
	if t.Weight <= 0 {
		return fmt.Errorf("hints: non-positive weight %v", t.Weight)
	}
	prevEnd := -1
	for i, r := range t.Ranges {
		if r.StartMs > r.EndMs {
			return fmt.Errorf("hints: range %d inverted [%d, %d]", i, r.StartMs, r.EndMs)
		}
		if r.StartMs <= prevEnd {
			return fmt.Errorf("hints: range %d overlaps previous (start %d <= %d)", i, r.StartMs, prevEnd)
		}
		if r.Millicores <= 0 {
			return fmt.Errorf("hints: range %d has non-positive size", i)
		}
		prevEnd = r.EndMs
	}
	return nil
}

// CompressionRatio reports 1 - condensed/raw, the paper's Fig 8 metric
// (e.g. 0.996 for IA). A raw count of zero yields zero.
func CompressionRatio(rawCount, condensedCount int) float64 {
	if rawCount == 0 {
		return 0
	}
	return 1 - float64(condensedCount)/float64(rawCount)
}
