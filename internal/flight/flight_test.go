package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsOncePerActiveKey(t *testing.T) {
	var g Group
	var fills atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	// One owner, guaranteed to hold the key before any waiter starts.
	var wg sync.WaitGroup
	wg.Add(1)
	var ownerVal any
	var ownerErr error
	go func() {
		defer wg.Done()
		ownerVal, ownerErr = g.Do("k", func() (any, error) {
			close(started)
			<-release
			fills.Add(1)
			return "v", nil
		})
	}()
	<-started

	const waiters = 7
	results := make([]any, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = g.Do("k", func() (any, error) {
				fills.Add(1)
				return "other", nil
			})
		}()
	}
	// The owner is parked on release, so the key stays registered; wait
	// until every waiter has joined the in-flight call, then let it finish.
	for g.pendingDups("k") < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	if ownerErr != nil || ownerVal != "v" {
		t.Fatalf("owner got (%v, %v)", ownerVal, ownerErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || results[i] != "v" {
			t.Fatalf("waiter %d got (%v, %v)", i, results[i], errs[i])
		}
	}
}

func TestDoDistinctKeysDoNotBlock(t *testing.T) {
	var g Group
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key k%d got (%v, %v)", i, v, err)
			}
		}()
	}
	wg.Wait()
}

func TestDoForgetsCompletedKeys(t *testing.T) {
	var g Group
	var fills int
	for i := 0; i < 3; i++ {
		if _, err := g.Do("k", func() (any, error) { fills++; return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if fills != 3 {
		t.Fatalf("sequential calls filled %d times, want 3 (no memoization)", fills)
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group
	wantErr := fmt.Errorf("boom")
	if _, err := g.Do("k", func() (any, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
