// Package flight provides call deduplication for concurrent cache fills
// (a minimal singleflight). The experiment suite's caches — profiles,
// deployments, workloads, serving runs — are expensive and keyed; when the
// concurrent runner fans suite points out over a worker pool, several
// workers can miss the same key at once. A Group guarantees the fill
// function runs exactly once per key while duplicates block and share the
// result, so parallel sweeps never duplicate a profile computation and
// never observe a half-built cache entry.
package flight

import "sync"

// Group deduplicates concurrent calls by key. The zero value is ready to
// use. Callers are expected to keep their own result cache: Group forgets
// a key as soon as its call completes.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	wg  sync.WaitGroup
	val any
	err error
	// dups counts callers sharing this call (test observability).
	dups int
}

// pendingDups reports how many callers are sharing the in-flight call for
// key, 0 if none is active. Tests use it to sequence deterministically.
func (g *Group) pendingDups(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.dups
	}
	return 0
}

// Do invokes fn once per concurrently active key. Callers that arrive
// while a call for the same key is in flight wait for it and receive the
// same result. After the call completes the key is forgotten, so a later
// Do runs fn again — the caller's cache, filled by fn, is what makes
// subsequent lookups cheap.
func (g *Group) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &call{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.val, c.err
}
