package interfere

import (
	"testing"
	"testing/quick"

	"janus/internal/rng"
)

func TestDefaultCurvesMatchFig1c(t *testing.T) {
	m := Default()
	// Alone, every dimension runs at factor 1.
	for _, d := range Dimensions() {
		if got := m.Slowdown(d, 1); got != 1 {
			t.Errorf("Slowdown(%v, 1) = %v, want 1", d, got)
		}
	}
	// The paper reports up to 8.1x at six co-located instances, with
	// network hit hardest and CPU least.
	if got := m.Slowdown(Network, 6); got != 8.1 {
		t.Errorf("Slowdown(network, 6) = %v, want 8.1", got)
	}
	if cpu := m.Slowdown(CPU, 6); cpu >= m.Slowdown(Memory, 6) {
		t.Errorf("CPU contention (%v) should be mildest", cpu)
	}
	if mem := m.Slowdown(Memory, 6); mem >= m.Slowdown(IO, 6) {
		t.Errorf("memory (%v) should contend less than IO", mem)
	}
	if io := m.Slowdown(IO, 6); io >= m.Slowdown(Network, 6) {
		t.Errorf("IO (%v) should contend less than network", io)
	}
}

func TestSlowdownMonotoneInInstances(t *testing.T) {
	m := Default()
	for _, d := range Dimensions() {
		prev := 0.0
		for n := 1; n <= 10; n++ {
			got := m.Slowdown(d, n)
			if got < prev {
				t.Fatalf("Slowdown(%v, %d) = %v decreased from %v", d, n, got, prev)
			}
			prev = got
		}
	}
}

func TestSlowdownExtrapolates(t *testing.T) {
	m := Default()
	at6 := m.Slowdown(Network, 6)
	at7 := m.Slowdown(Network, 7)
	at8 := m.Slowdown(Network, 8)
	if at7 <= at6 || at8-at7 != at7-at6 {
		t.Fatalf("extrapolation not linear: %v, %v, %v", at6, at7, at8)
	}
}

func TestSlowdownZeroAndNegativeInstances(t *testing.T) {
	m := Default()
	if m.Slowdown(CPU, 0) != 1 || m.Slowdown(CPU, -5) != 1 {
		t.Fatal("n <= 1 should mean no contention")
	}
}

func TestUnknownDimensionIsNeutral(t *testing.T) {
	m := Default()
	if got := m.Slowdown(Dimension(99), 6); got != 1 {
		t.Fatalf("unknown dimension slowdown = %v, want 1", got)
	}
}

func TestSampleJitterStaysNearCurve(t *testing.T) {
	m := Default()
	s := rng.New(1)
	for i := 0; i < 5000; i++ {
		f := m.Sample(Network, 6, s)
		if f < 8.1*0.8-1e-9 || f > 8.1*1.25+1e-9 {
			t.Fatalf("jittered sample %v strayed beyond clip range", f)
		}
	}
}

func TestSampleNeverBelowOne(t *testing.T) {
	m := Default()
	s := rng.New(2)
	for i := 0; i < 5000; i++ {
		if f := m.Sample(CPU, 1, s); f < 1 {
			t.Fatalf("sample %v below 1", f)
		}
	}
}

func TestSampleNilStreamIsDeterministic(t *testing.T) {
	m := Default()
	if m.Sample(IO, 3, nil) != m.Slowdown(IO, 3) {
		t.Fatal("nil stream should return the curve value")
	}
}

func TestSetCurveValidation(t *testing.T) {
	m := Default()
	if err := m.SetCurve(CPU, nil); err == nil {
		t.Error("empty curve accepted")
	}
	if err := m.SetCurve(CPU, []float64{1.0, 0.9}); err == nil {
		t.Error("decreasing curve accepted")
	}
	if err := m.SetCurve(CPU, []float64{0.5, 2}); err == nil {
		t.Error("curve starting below 1 accepted")
	}
	if err := m.SetCurve(CPU, []float64{1, 2, 3}); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	if got := m.Slowdown(CPU, 3); got != 3 {
		t.Errorf("SetCurve not applied: %v", got)
	}
}

func TestSetCurveCopiesInput(t *testing.T) {
	m := Default()
	curve := []float64{1, 2}
	if err := m.SetCurve(CPU, curve); err != nil {
		t.Fatal(err)
	}
	curve[1] = 100
	if got := m.Slowdown(CPU, 2); got != 2 {
		t.Fatalf("SetCurve aliased caller slice: %v", got)
	}
}

func TestSetCurveExtendsMaxInstances(t *testing.T) {
	m := Default()
	curve := make([]float64, 9)
	for i := range curve {
		curve[i] = 1 + float64(i)
	}
	if err := m.SetCurve(IO, curve); err != nil {
		t.Fatal(err)
	}
	if m.MaxInstances != 9 {
		t.Fatalf("MaxInstances = %d, want 9", m.MaxInstances)
	}
}

func TestCountSamplerValidation(t *testing.T) {
	if _, err := NewCountSampler(nil); err == nil {
		t.Error("nil weights accepted")
	}
	if _, err := NewCountSampler([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
	if _, err := NewCountSampler([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCountSamplerRange(t *testing.T) {
	cs, err := NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		n := cs.Sample(s)
		if n < 1 || n > 3 {
			t.Fatalf("count %d out of range", n)
		}
		counts[n]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[3] {
		t.Fatalf("count distribution not matching weights: %v", counts)
	}
}

func TestCountSamplerCopiesWeights(t *testing.T) {
	w := []float64{1, 1}
	cs, err := NewCountSampler(w)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 1e9
	s := rng.New(4)
	ones := 0
	for i := 0; i < 1000; i++ {
		if cs.Sample(s) == 1 {
			ones++
		}
	}
	if ones > 600 {
		t.Fatalf("sampler aliased caller weights: %d ones", ones)
	}
}

func TestDimensionString(t *testing.T) {
	want := map[Dimension]string{CPU: "cpu", Memory: "memory", IO: "io", Network: "network"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if Dimension(42).String() != "dimension(42)" {
		t.Error("unknown dimension string format changed")
	}
}

func TestSlowdownPropertyAtLeastOne(t *testing.T) {
	m := Default()
	f := func(d uint8, n int8) bool {
		dim := Dimension(int(d) % 4)
		return m.Slowdown(dim, int(n)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
