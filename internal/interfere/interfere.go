// Package interfere models performance interference from co-locating
// homogeneous function instances on the same virtual machine (§II-B of the
// paper). Commercial platforms pack instances of the same tenant — often
// the same function — onto one VM, so instances contend on the VM's shared
// resources. The paper measures the slowdown growing with the number of
// co-located instances (1 to 6) and reaching up to 8.1x, with the severity
// depending on the function's dominant resource dimension (network and
// memory bandwidth suffer most).
package interfere

import (
	"fmt"

	"janus/internal/rng"
)

// Dimension is a function's dominant resource demand.
type Dimension int

// The four resource dimensions measured in Fig 1c.
const (
	CPU Dimension = iota
	Memory
	IO
	Network
)

// String implements fmt.Stringer.
func (d Dimension) String() string {
	switch d {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case IO:
		return "io"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("dimension(%d)", int(d))
	}
}

// Dimensions lists all modeled dimensions in display order.
func Dimensions() []Dimension { return []Dimension{CPU, Memory, IO, Network} }

// Model maps (dimension, co-located instance count) to a latency slowdown
// factor >= 1. The zero value is not useful; use Default.
type Model struct {
	// MaxInstances is the largest co-location count with a calibrated
	// point; larger counts extrapolate with the last slope.
	MaxInstances int
	// curves[d][n-1] is the slowdown with n co-located instances.
	curves map[Dimension][]float64
	// Jitter is the lognormal sigma applied on top of the curve to model
	// measurement-to-measurement contention variability.
	Jitter float64
}

// Default returns the model calibrated against Fig 1c: with six co-located
// instances the CPU-bound function slows modestly while the network-bound
// one reaches ~8.1x.
func Default() *Model {
	return &Model{
		MaxInstances: 6,
		curves: map[Dimension][]float64{
			CPU:     {1.00, 1.12, 1.30, 1.55, 1.85, 2.30},
			Memory:  {1.00, 1.35, 1.95, 2.80, 3.90, 5.20},
			IO:      {1.00, 1.45, 2.20, 3.30, 4.80, 6.50},
			Network: {1.00, 1.60, 2.60, 4.00, 5.90, 8.10},
		},
		Jitter: 0.06,
	}
}

// Slowdown returns the deterministic slowdown factor for n co-located
// instances of a function dominated by dimension d. n <= 1 means the
// instance runs alone (factor 1).
func (m *Model) Slowdown(d Dimension, n int) float64 {
	curve, ok := m.curves[d]
	if !ok {
		return 1
	}
	if n <= 1 {
		return curve[0]
	}
	if n <= len(curve) {
		return curve[n-1]
	}
	// Extrapolate linearly with the final slope for n beyond calibration.
	last := curve[len(curve)-1]
	slope := last - curve[len(curve)-2]
	return last + slope*float64(n-len(curve))
}

// Sample returns the slowdown with jitter applied from the stream.
func (m *Model) Sample(d Dimension, n int, s *rng.Stream) float64 {
	f := m.Slowdown(d, n)
	if m.Jitter > 0 && s != nil {
		f *= s.LogNormalClipped(0, m.Jitter, 0.8, 1.25)
	}
	if f < 1 {
		return 1
	}
	return f
}

// SetCurve replaces the calibration for one dimension. The curve must be
// non-empty, start at >= 1, and be non-decreasing.
func (m *Model) SetCurve(d Dimension, curve []float64) error {
	if len(curve) == 0 {
		return fmt.Errorf("interfere: empty curve for %v", d)
	}
	prev := 1.0
	for i, v := range curve {
		if v < prev {
			return fmt.Errorf("interfere: curve for %v decreases at index %d (%v < %v)", d, i, v, prev)
		}
		prev = v
	}
	if m.curves == nil {
		m.curves = make(map[Dimension][]float64)
	}
	cp := make([]float64, len(curve))
	copy(cp, curve)
	m.curves[d] = cp
	if len(curve) > m.MaxInstances {
		m.MaxInstances = len(curve)
	}
	return nil
}

// CountSampler draws a co-location count from a configured distribution.
// The offline profiler uses it to expose profiles to the same contention
// mix the platform produces at serving time.
type CountSampler struct {
	// Weights[i] is the probability weight of observing i+1 co-located
	// instances.
	Weights []float64
}

// NewCountSampler validates and builds a sampler.
func NewCountSampler(weights []float64) (*CountSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("interfere: CountSampler requires weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("interfere: negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("interfere: weights sum to zero")
	}
	cp := make([]float64, len(weights))
	copy(cp, weights)
	return &CountSampler{Weights: cp}, nil
}

// Sample draws a co-location count in [1, len(Weights)].
func (c *CountSampler) Sample(s *rng.Stream) int {
	return s.Choice(c.Weights) + 1
}
