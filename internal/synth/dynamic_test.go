package synth

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/workflow"
)

var (
	dynSetOnce sync.Once
	dynSet     *profile.Set
)

// dynProfiles profiles the dynamic trigger workflow once for all tests:
// a conditional fork at triage, a width-4 map on ocr, an awaited gate.
func dynProfiles(t *testing.T) *profile.Set {
	t.Helper()
	dynSetOnce.Do(func() {
		nodes := []workflow.Node{
			{Name: "ingest", Function: "fe"},
			{Name: "triage", Function: "ico"},
			{Name: "caption", Function: "redis-read"},
			{Name: "detect", Function: "icl"},
			{Name: "ocr", Function: "aes-encrypt"},
			{Name: "gate", Function: "redis-read"},
			{Name: "publish", Function: "socket-comm"},
		}
		edges := [][2]string{
			{"ingest", "triage"},
			{"triage", "caption"},
			{"triage", "detect"},
			{"detect", "ocr"},
			{"caption", "gate"},
			{"ocr", "gate"},
			{"gate", "publish"},
		}
		w, err := workflow.NewDynamic("trig", 1500*time.Millisecond, nodes, edges, []workflow.DynamicNode{
			{Step: "triage", Choice: &workflow.ChoiceSpec{Weights: []float64{0.55, 0.45}}},
			{Step: "ocr", Map: &workflow.MapSpec{MaxWidth: 4}, Retry: &workflow.RetrySpec{MaxRetries: 2, FailureProb: 0.3}},
			{Step: "gate", Await: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
		if err != nil {
			t.Fatal(err)
		}
		p, err := profile.NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), 11)
		if err != nil {
			t.Fatal(err)
		}
		p.SamplesPerConfig = 400
		set, err := p.ProfileWorkflow(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		dynSet = set
	})
	if dynSet == nil {
		t.Fatal("dynamic profiling failed earlier")
	}
	return dynSet
}

// ocrGroup finds the decision group holding the map member.
func ocrGroup(t *testing.T, set *profile.Set) int {
	t.Helper()
	for g := range set.Shaped {
		return g
	}
	t.Fatal("no shaped group in dynamic set")
	return -1
}

func TestShapedBundleGeneration(t *testing.T) {
	set := dynProfiles(t)
	s := newSynth(t, Config{Profiles: set})
	res, err := s.GenerateBundle()
	if err != nil {
		t.Fatal(err)
	}
	b := res.Bundle
	og := ocrGroup(t, set)
	if len(b.Shaped) != 1 || len(b.Shaped[og]) != 4 {
		t.Fatalf("Shaped tables = %v, want 4 variants for group %d", b.Shaped, og)
	}
	// The max-width variant was synthesized from the very same head
	// profile as the conservative base table, over the same downstream
	// DP: the tables must be identical.
	if !reflect.DeepEqual(b.Shaped[og]["w=4"], b.Tables[og]) {
		t.Fatalf("max-width variant differs from the base table:\n%+v\n%+v", b.Shaped[og]["w=4"], b.Tables[og])
	}
	// Resolving a smaller width extends coverage to tighter budgets:
	// each variant's minimum covered budget is monotone in width up to
	// one sweep step of jitter (each variant's sweep is anchored at its
	// own Eq. 3 floor, so adjacent grids are offset by less than a
	// step), and the width-1 table reaches strictly below the worst
	// case.
	prev := -1
	for v := 1; v <= 4; v++ {
		tab, ok := b.ShapedTable(og, fmt.Sprintf("w=%d", v))
		if !ok {
			t.Fatalf("missing variant w=%d", v)
		}
		lo, ok := tab.MinBudgetMs()
		if !ok {
			t.Fatalf("variant w=%d is empty", v)
		}
		if lo < prev-10 {
			t.Fatalf("min budget not monotone in width: w=%d covers %dms, w=%d covered %dms", v, lo, v-1, prev)
		}
		prev = lo
	}
	// The economic claim: at equal budgets, planning against the
	// resolved width provisions no more — and in aggregate strictly
	// fewer — millicores than planning against the worst case. Summed
	// over the base table's covered range, the width-1 variant must be
	// strictly cheaper.
	baselo, _ := b.Tables[og].MinBudgetMs()
	basehi, _ := b.Tables[og].MaxBudgetMs()
	w1, base := 0, 0
	for t := baselo; t <= basehi; t++ {
		budget := time.Duration(t) * time.Millisecond
		rb, ok := b.Tables[og].Lookup(budget)
		if !ok {
			continue
		}
		rv, ok := b.Shaped[og]["w=1"].Lookup(budget)
		if !ok {
			continue
		}
		w1 += rv.Millicores
		base += rb.Millicores
	}
	if w1 >= base {
		t.Fatalf("width-1 planning not cheaper than worst-case planning (%d vs %d millicore-ms)", w1, base)
	}
}

// TestStaticBundleHasNoShapedTables pins hint-for-hint identity for the
// static path: a static workflow's bundle carries no shaped tables and
// its base tables are untouched by the shaped machinery.
func TestStaticBundleHasNoShapedTables(t *testing.T) {
	s := newSynth(t, Config{})
	res, err := s.GenerateBundle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bundle.Shaped != nil {
		t.Fatalf("static bundle has shaped tables: %v", res.Bundle.Shaped)
	}
}

func TestShapedProfilesValidatedAtNew(t *testing.T) {
	set := dynProfiles(t)
	bad := &profile.Set{
		Workflow: set.Workflow,
		Batch:    set.Batch,
		Profiles: set.Profiles,
		Shaped:   map[int]map[string]*profile.FunctionProfile{99: {"w=1": set.At(0)}},
	}
	if _, err := New(Config{Profiles: bad, BudgetStepMs: 10}); err == nil {
		t.Fatal("out-of-range shaped group accepted")
	}
	bad.Shaped = map[int]map[string]*profile.FunctionProfile{0: {"w=1": nil}}
	if _, err := New(Config{Profiles: bad, BudgetStepMs: 10}); err == nil {
		t.Fatal("nil shaped profile accepted")
	}
}
