package synth

import (
	"sync"
	"testing"
	"time"

	"janus/internal/hints"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/workflow"
)

var (
	iaSetOnce sync.Once
	iaSet     *profile.Set
)

// iaProfiles profiles the IA chain once for all tests (600 samples/config
// keeps it fast while staying statistically stable).
func iaProfiles(t *testing.T) *profile.Set {
	t.Helper()
	iaSetOnce.Do(func() {
		coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
		if err != nil {
			t.Fatal(err)
		}
		p, err := profile.NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), 11)
		if err != nil {
			t.Fatal(err)
		}
		p.SamplesPerConfig = 600
		set, err := p.ProfileWorkflow(workflow.IntelligentAssistant(), 1)
		if err != nil {
			t.Fatal(err)
		}
		iaSet = set
	})
	if iaSet == nil {
		t.Fatal("profiling failed earlier")
	}
	return iaSet
}

func newSynth(t *testing.T, cfg Config) *Synthesizer {
	t.Helper()
	if cfg.Profiles == nil {
		cfg.Profiles = iaProfiles(t)
	}
	if cfg.BudgetStepMs == 0 {
		cfg.BudgetStepMs = 10 // coarse sweep for test speed; benches use 1ms
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	set := iaProfiles(t)
	if _, err := New(Config{}); err == nil {
		t.Error("nil profiles accepted")
	}
	if _, err := New(Config{Profiles: set, Weight: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(Config{Profiles: set, BudgetStepMs: -5}); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := New(Config{Profiles: set, Mode: Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(Config{Profiles: set, BudgetOverrideMs: [2]int{100, 50}}); err == nil {
		t.Error("inverted budget override accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeJanus.String() != "janus" || ModeJanusMinus.String() != "janus-" || ModeJanusPlus.String() != "janus+" {
		t.Fatal("mode names changed")
	}
}

func TestGenerateSuffixFeasibilityAndConstraints(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus})
	set := iaProfiles(t)
	raw, err := s.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Hints) == 0 {
		t.Fatal("no hints generated")
	}
	kmax := set.At(0).Grid.Max
	for _, h := range raw.Hints {
		if len(h.PlanMillicores) != 3 {
			t.Fatalf("hint at %dms has plan %v", h.BudgetMs, h.PlanMillicores)
		}
		// Eq. 5: planned execution fits the budget.
		total := set.At(0).LMs(h.HeadPercentile, h.PlanMillicores[0])
		for i := 1; i < 3; i++ {
			total += set.At(i).LMs(99, h.PlanMillicores[i])
		}
		if total > h.BudgetMs {
			t.Fatalf("hint at %dms plans %dms of execution", h.BudgetMs, total)
		}
		// Eq. 6: the head's timeout fits downstream resilience.
		d := set.At(0).TimeoutMs(h.HeadPercentile, h.PlanMillicores[0])
		res := 0
		for i := 1; i < 3; i++ {
			res += set.At(i).LMs(99, h.PlanMillicores[i]) - set.At(i).LMs(99, kmax)
		}
		if d > res {
			t.Fatalf("hint at %dms: timeout %d exceeds resilience %d", h.BudgetMs, d, res)
		}
	}
	// Generous budgets settle at (nearly) minimum allocations; the coarse
	// test sweep can stop one step short of Tmax, so allow one grid step.
	last := raw.Hints[len(raw.Hints)-1]
	total := last.PlanMillicores[0] + last.PlanMillicores[1] + last.PlanMillicores[2]
	if total > 3200 {
		t.Errorf("largest budget plan = %v (total %d), want near the 3000 grid minimum", last.PlanMillicores, total)
	}
}

func TestJanusMinusSticksToP99(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanusMinus})
	raw, err := s.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range raw.Hints {
		if h.HeadPercentile != 99 {
			t.Fatalf("Janus- chose percentile %d", h.HeadPercentile)
		}
	}
}

func TestJanusExploresLowerPercentiles(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus})
	raw, err := s.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	explored := false
	for _, h := range raw.Hints {
		if h.HeadPercentile < 99 {
			explored = true
			break
		}
	}
	if !explored {
		t.Fatal("Janus never used a percentile below 99 — exploration is dead")
	}
}

func TestJanusCostNeverAboveJanusMinus(t *testing.T) {
	// Janus searches a superset of Janus-'s space, so per-budget expected
	// cost can only improve.
	sj := newSynth(t, Config{Mode: ModeJanus})
	sm := newSynth(t, Config{Mode: ModeJanusMinus})
	rj, err := sj.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sm.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	minusByBudget := map[int]float64{}
	for _, h := range rm.Hints {
		minusByBudget[h.BudgetMs] = h.ExpectedCost
	}
	improved := false
	for _, h := range rj.Hints {
		mc, ok := minusByBudget[h.BudgetMs]
		if !ok {
			continue
		}
		if h.ExpectedCost > mc+1e-6 {
			t.Fatalf("budget %dms: Janus cost %.1f above Janus- %.1f", h.BudgetMs, h.ExpectedCost, mc)
		}
		if h.ExpectedCost < mc-1e-6 {
			improved = true
		}
	}
	if !improved {
		t.Fatal("Janus never improved on Janus- anywhere")
	}
}

func TestJanusPlusCostNeverAboveJanus(t *testing.T) {
	sp := newSynth(t, Config{Mode: ModeJanusPlus, BudgetStepMs: 50})
	sj := newSynth(t, Config{Mode: ModeJanus, BudgetStepMs: 50})
	rp, err := sp.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := sj.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	jByBudget := map[int]float64{}
	for _, h := range rj.Hints {
		jByBudget[h.BudgetMs] = h.ExpectedCost
	}
	// Janus+'s objective charges the second function's residual 1% timeout
	// risk even at p2 = 99 — a (1-0.99)*(N-1)*Kmax = 60-millicore wedge
	// Janus's plain downstream term does not carry. Within that wedge the
	// costs must agree; Janus+ must never be meaningfully worse.
	const wedge = 60.0
	for _, h := range rp.Hints {
		jc, ok := jByBudget[h.BudgetMs]
		if !ok {
			continue
		}
		if h.ExpectedCost > jc+wedge+1e-6 {
			t.Fatalf("budget %dms: Janus+ cost %.1f above Janus %.1f beyond the p2=99 wedge", h.BudgetMs, h.ExpectedCost, jc)
		}
	}
}

func TestSingleFunctionSuffixUsesP99MinResource(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus})
	set := iaProfiles(t)
	raw, err := s.GenerateSuffix(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Hints) == 0 {
		t.Fatal("no hints for last stage")
	}
	for _, h := range raw.Hints {
		if h.HeadPercentile != 99 {
			t.Fatalf("single-function hint at %dms explored percentile %d", h.BudgetMs, h.HeadPercentile)
		}
		if set.At(2).LMs(99, h.HeadMillicores) > h.BudgetMs {
			t.Fatalf("single-function hint at %dms does not fit", h.BudgetMs)
		}
		// Minimality: one grid step less must not fit.
		if h.HeadMillicores > 1000 {
			if set.At(2).LMs(99, h.HeadMillicores-100) <= h.BudgetMs {
				t.Fatalf("hint at %dms not minimal: %d would fit", h.BudgetMs, h.HeadMillicores-100)
			}
		}
	}
}

func TestWeightShrinksHeadAndPercentile(t *testing.T) {
	// Table II: higher weight -> smaller head sizes and lower percentiles.
	s1 := newSynth(t, Config{Mode: ModeJanus, Weight: 1})
	s3 := newSynth(t, Config{Mode: ModeJanus, Weight: 3})
	r1, err := s1.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s3.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	byBudget := map[int]hints.Hint{}
	for _, h := range r1.Hints {
		byBudget[h.BudgetMs] = h
	}
	var sumK1, sumK3, sumP1, sumP3 float64
	n := 0
	for _, h3 := range r3.Hints {
		h1, ok := byBudget[h3.BudgetMs]
		if !ok {
			continue
		}
		sumK1 += float64(h1.HeadMillicores)
		sumK3 += float64(h3.HeadMillicores)
		sumP1 += float64(h1.HeadPercentile)
		sumP3 += float64(h3.HeadPercentile)
		n++
	}
	if n == 0 {
		t.Fatal("no comparable budgets")
	}
	if sumK3/float64(n) >= sumK1/float64(n) {
		t.Errorf("weight 3 mean head size %.1f not below weight 1 %.1f", sumK3/float64(n), sumK1/float64(n))
	}
	if sumP3/float64(n) >= sumP1/float64(n) {
		t.Errorf("weight 3 mean percentile %.1f not below weight 1 %.1f", sumP3/float64(n), sumP1/float64(n))
	}
}

func TestGenerateBundle(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus})
	res, err := s.GenerateBundle()
	if err != nil {
		t.Fatal(err)
	}
	b := res.Bundle
	if b.Workflow != "ia" || b.Stages() != 3 || b.SLOMs != 3000 || b.MaxMillicores != 3000 {
		t.Fatalf("bundle header = %+v", b)
	}
	for i, tab := range b.Tables {
		if tab.Suffix != i || tab.Size() == 0 {
			t.Fatalf("table %d: suffix %d size %d", i, tab.Suffix, tab.Size())
		}
	}
	// Condensing must compress dramatically (Fig 8: >98%).
	for i := range res.RawCounts {
		ratio := hints.CompressionRatio(res.RawCounts[i], res.CondensedCounts[i])
		if ratio < 0.5 {
			t.Errorf("suffix %d compression %.2f suspiciously low (%d -> %d)",
				i, ratio, res.RawCounts[i], res.CondensedCounts[i])
		}
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	// SLO lookup on the full-workflow table must hit.
	if _, ok := b.Tables[0].Lookup(3 * time.Second); !ok {
		t.Error("SLO budget misses the suffix-0 table")
	}
}

func TestGenerateDeterministicAcrossParallelism(t *testing.T) {
	a := newSynth(t, Config{Mode: ModeJanus, Parallelism: 1})
	b := newSynth(t, Config{Mode: ModeJanus, Parallelism: 8})
	ra, err := a.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Hints) != len(rb.Hints) {
		t.Fatalf("hint counts differ: %d vs %d", len(ra.Hints), len(rb.Hints))
	}
	for i := range ra.Hints {
		ha, hb := ra.Hints[i], rb.Hints[i]
		if ha.BudgetMs != hb.BudgetMs || ha.HeadMillicores != hb.HeadMillicores || ha.HeadPercentile != hb.HeadPercentile {
			t.Fatalf("hint %d differs across parallelism: %+v vs %+v", i, ha, hb)
		}
	}
}

func TestBudgetOverride(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus, BudgetOverrideMs: [2]int{2000, 7000}})
	raw, err := s.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	first, last := raw.Hints[0], raw.Hints[len(raw.Hints)-1]
	if first.BudgetMs < 2000 {
		t.Errorf("first budget %d below override", first.BudgetMs)
	}
	if last.BudgetMs > 7000 {
		t.Errorf("last budget %d above override", last.BudgetMs)
	}
}

func TestGenerateSuffixRange(t *testing.T) {
	s := newSynth(t, Config{Mode: ModeJanus})
	if _, err := s.GenerateSuffix(-1); err == nil {
		t.Error("negative suffix accepted")
	}
	if _, err := s.GenerateSuffix(3); err == nil {
		t.Error("out-of-range suffix accepted")
	}
}

func TestHeadSizeTrendsDownWithBudget(t *testing.T) {
	// More slack should never require a *larger* workflow allocation:
	// total planned cores are non-increasing in budget.
	s := newSynth(t, Config{Mode: ModeJanusMinus})
	raw, err := s.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, h := range raw.Hints {
		total := 0
		for _, k := range h.PlanMillicores {
			total += k
		}
		if total > prev {
			t.Fatalf("planned total %d grew with budget at %dms", total, h.BudgetMs)
		}
		prev = total
	}
}

func TestBudgetFloorExtendsEveryConeDownward(t *testing.T) {
	base := newSynth(t, Config{Mode: ModeJanus})
	floored := newSynth(t, Config{Mode: ModeJanus, BudgetFloorMs: 1})
	for suffix := 0; suffix < 3; suffix++ {
		raw, err := base.GenerateSuffix(suffix)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := floored.GenerateSuffix(suffix)
		if err != nil {
			t.Fatal(err)
		}
		if len(ext.Hints) < len(raw.Hints) {
			t.Fatalf("suffix %d: floored sweep produced fewer hints (%d < %d)", suffix, len(ext.Hints), len(raw.Hints))
		}
		// The floor can only add coverage below the Eq. 3 minimum; any
		// hint it adds must be feasible, i.e. cheaper budgets demand
		// at-least-as-large head allocations.
		if ext.Hints[0].BudgetMs > raw.Hints[0].BudgetMs {
			t.Fatalf("suffix %d: floored minimum %d above un-floored %d", suffix, ext.Hints[0].BudgetMs, raw.Hints[0].BudgetMs)
		}
		// Budgets within the original range keep their original plans:
		// the floor extends the sweep, it does not re-price it.
		byBudget := map[int]int{}
		for _, h := range ext.Hints {
			byBudget[h.BudgetMs] = h.HeadMillicores
		}
		for _, h := range raw.Hints {
			if got, ok := byBudget[h.BudgetMs]; !ok || got != h.HeadMillicores {
				t.Fatalf("suffix %d: budget %d resized from %d to %d under the floor", suffix, h.BudgetMs, h.HeadMillicores, got)
			}
		}
	}
}

func TestBudgetFloorValidation(t *testing.T) {
	if _, err := New(Config{Profiles: iaProfiles(t), BudgetStepMs: 10, BudgetFloorMs: -1}); err == nil {
		t.Fatal("negative budget floor accepted")
	}
}

func TestBudgetFloorInsideLastStepStillCovered(t *testing.T) {
	// A floor that is not step-aligned with the sweep minimum must still
	// end up covered: the extension rounds its step count up, so the
	// first extended budget lands at or below the floor instead of
	// leaving a sub-step gap that would keep missing after a hot-swap.
	// The override window sits fully inside the feasible region (IA's
	// suffix-0 hints start around 2.8 s at this profile scale), so every
	// extended budget below it can actually yield a hint.
	base := newSynth(t, Config{Mode: ModeJanus, BudgetOverrideMs: [2]int{3000, 3400}})
	floor := 2995 // 5ms below the override minimum, step is 10ms
	floored := newSynth(t, Config{Mode: ModeJanus, BudgetOverrideMs: [2]int{3000, 3400}, BudgetFloorMs: floor})
	raw, err := base.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := floored.GenerateSuffix(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Hints) <= len(raw.Hints) {
		t.Fatalf("floor inside the last step added no coverage (%d vs %d hints)", len(ext.Hints), len(raw.Hints))
	}
	if ext.Hints[0].BudgetMs > floor {
		t.Fatalf("lowest swept budget %d above the observed floor %d", ext.Hints[0].BudgetMs, floor)
	}
}
