package synth

import (
	"fmt"
	"testing"
	"time"

	"janus/internal/profile"
	"janus/internal/rng"
	"janus/internal/workflow"
)

// Brute-force equivalence: on small synthetic profiles, Algorithm 1's
// DP-based implementation must find exactly the optimum that exhaustive
// enumeration of (p, k1, ..., kN) finds, for every budget.

// synthGrid is small enough to enumerate: 3 allocation levels.
var synthGrid = profile.Grid{Min: 1000, Max: 1200, Step: 100}

// synthPercentiles keeps exploration two-way: one low percentile plus the
// mandatory 99.
var synthPercentiles = []int{50, 99}

// randomProfile builds a random but valid (monotone) latency table.
func randomProfile(t *testing.T, name string, stream *rng.Stream) *profile.FunctionProfile {
	t.Helper()
	levels := synthGrid.Len()
	lat := make([][]int, len(synthPercentiles))
	// Build the P99 row first (larger), then the P50 row below it, both
	// non-increasing in k.
	p99 := make([]int, levels)
	cur := 300 + stream.IntN(700)
	for ki := levels - 1; ki >= 0; ki-- {
		p99[ki] = cur
		cur += stream.IntN(200)
	}
	p50 := make([]int, levels)
	for ki := 0; ki < levels; ki++ {
		p50[ki] = p99[ki] - stream.IntN(p99[ki]/2+1)
		if p50[ki] < 1 {
			p50[ki] = 1
		}
	}
	// Enforce monotonicity in k for the P50 row too.
	for ki := levels - 2; ki >= 0; ki-- {
		if p50[ki] < p50[ki+1] {
			p50[ki] = p50[ki+1]
		}
	}
	lat[0], lat[1] = p50, p99
	fp, err := profile.NewFunctionProfile(name, 1, synthGrid, synthPercentiles, lat)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func randomSet(t *testing.T, n int, seed uint64) *profile.Set {
	t.Helper()
	stream := rng.New(seed)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	w, err := workflow.NewChain("synthetic", 5*time.Second, names...)
	if err != nil {
		t.Fatal(err)
	}
	set := &profile.Set{Workflow: w, Batch: 1}
	for _, name := range names {
		set.Profiles = append(set.Profiles, randomProfile(t, name, stream.Split(name)))
	}
	return set
}

// bruteForce solves the Eq. 4-8 program for one budget by enumeration,
// mirroring Algorithm 1's structure: the downstream functions take the
// minimum-total-cores P99 plan for the budget the head leaves them (tied
// plans resolved toward maximum resilience, matching the DP), and the head
// choice is feasible only if its timeout fits that plan's resilience.
// It returns the minimal expected cost, or -1 when infeasible.
func bruteForce(set *profile.Set, suffix, tMs int, weight float64) float64 {
	n := set.Len() - suffix
	levels := synthGrid.Levels()
	kmax := synthGrid.Max
	if n == 1 {
		fp := set.At(suffix)
		for _, k := range levels {
			if fp.LMs(99, k) <= tMs {
				return weight * float64(k)
			}
		}
		return -1
	}
	downKmax := 0
	for j := suffix + 1; j < set.Len(); j++ {
		downKmax += set.At(j).LMs(99, kmax)
	}
	head := set.At(suffix)

	// minDown enumerates downstream plans within `budget` and returns the
	// minimal total cores plus the best resilience at that total.
	minDown := func(budget int) (total, resilience int, ok bool) {
		bestTotal, bestRes := -1, -1
		var enumerate func(j, left, coresSum, resSum int)
		enumerate = func(j, left, coresSum, resSum int) {
			if j == set.Len() {
				if bestTotal < 0 || coresSum < bestTotal || (coresSum == bestTotal && resSum > bestRes) {
					bestTotal, bestRes = coresSum, resSum
				}
				return
			}
			fp := set.At(j)
			for _, k := range levels {
				l := fp.LMs(99, k)
				if l > left {
					continue
				}
				enumerate(j+1, left-l, coresSum+k, resSum+(l-fp.LMs(99, kmax)))
			}
		}
		enumerate(suffix+1, budget, 0, 0)
		return bestTotal, bestRes, bestTotal >= 0
	}

	best := -1.0
	for _, p := range synthPercentiles {
		if head.LMs(p, kmax)+downKmax > tMs {
			continue // explore_percentile filter
		}
		for _, k1 := range levels {
			headL := head.LMs(p, k1)
			if headL > tMs {
				continue
			}
			total, resilience, ok := minDown(tMs - headL)
			if !ok || head.TimeoutMs(p, k1) > resilience {
				continue
			}
			pf := float64(p) / 100
			cost := weight*float64(k1) + pf*float64(total) + (1-pf)*float64(n-1)*float64(kmax)
			if best < 0 || cost < best {
				best = cost
			}
		}
	}
	return best
}

func TestAlgorithm1MatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for _, n := range []int{2, 3} {
			set := randomSet(t, n, seed*31+uint64(n))
			for _, weight := range []float64{1, 2.5} {
				s, err := New(Config{Profiles: set, Weight: weight, Mode: ModeJanus, BudgetStepMs: 37})
				if err != nil {
					t.Fatal(err)
				}
				for suffix := 0; suffix < n; suffix++ {
					raw, err := s.GenerateSuffix(suffix)
					if err != nil {
						t.Fatal(err)
					}
					byBudget := map[int]float64{}
					for _, h := range raw.Hints {
						byBudget[h.BudgetMs] = h.ExpectedCost
					}
					tmin, tmax := set.BudgetRangeMs(suffix)
					for tMs := tmin; tMs <= tmax; tMs += 37 {
						want := bruteForce(set, suffix, tMs, weight)
						got, ok := byBudget[tMs]
						if want < 0 {
							if ok {
								t.Fatalf("seed %d n %d w %v suffix %d t %d: hint %v for infeasible budget",
									seed, n, weight, suffix, tMs, got)
							}
							continue
						}
						if !ok {
							t.Fatalf("seed %d n %d w %v suffix %d t %d: no hint for feasible budget (want cost %v)",
								seed, n, weight, suffix, tMs, want)
						}
						if diff := got - want; diff > 1e-6 || diff < -1e-6 {
							t.Fatalf("seed %d n %d w %v suffix %d t %d: cost %v, brute force %v",
								seed, n, weight, suffix, tMs, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAlgorithm1HintsAlwaysFitBudget is the corresponding safety property
// over the synthetic tables: every emitted plan satisfies Eq. 5 and Eq. 6.
func TestAlgorithm1HintsAlwaysFitBudget(t *testing.T) {
	for seed := uint64(100); seed < 110; seed++ {
		set := randomSet(t, 3, seed)
		s, err := New(Config{Profiles: set, Mode: ModeJanus, BudgetStepMs: 23})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := s.GenerateSuffix(0)
		if err != nil {
			t.Fatal(err)
		}
		kmax := synthGrid.Max
		for _, h := range raw.Hints {
			total := set.At(0).LMs(h.HeadPercentile, h.PlanMillicores[0])
			res := 0
			for i := 1; i < 3; i++ {
				total += set.At(i).LMs(99, h.PlanMillicores[i])
				res += set.At(i).LMs(99, h.PlanMillicores[i]) - set.At(i).LMs(99, kmax)
			}
			if total > h.BudgetMs {
				t.Fatalf("seed %d t %d: plan takes %dms", seed, h.BudgetMs, total)
			}
			if set.At(0).TimeoutMs(h.HeadPercentile, h.PlanMillicores[0]) > res {
				t.Fatalf("seed %d t %d: resilience constraint violated", seed, h.BudgetMs)
			}
		}
	}
}
