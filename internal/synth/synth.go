// Package synth implements Janus's Synthesizer (§IV): offline generation of
// hints tables (Algorithm 1) followed by condensing (Algorithm 2, in
// package hints).
//
// Hints are synthesized per decision group of the workflow DAG (see
// workflow.DecisionGroups): the sub-workflow a table covers is the group's
// descendant cone, layered by critical-path depth into a sequential
// composite chain (profile.Set.ConeProfiles). For a chain the cones are
// the classic node suffixes; for a series-parallel workflow they are the
// stage suffixes of the effective chain; for an arbitrary DAG each layer's
// latency is the pointwise max over its groups — a conservative upper
// bound on the cone's max-over-paths latency.
//
// For every cone and every candidate time budget t (explored at
// millisecond granularity across the Eq. 3 range), the synthesizer solves
//
//	min  W*k1 + (p/100)*sum(ki) + (1-p/100)*(N-1)*Kmax      (Eq. 4)
//	s.t. L1(p, k1) + sum Li(99, ki) <= t                     (Eq. 5)
//	     D1(p, k1) <= sum Ri(99, ki)                         (Eq. 6)
//
// where only the head (the cone's own group) explores percentiles below 99
// (Insight-2, "moderate percentile exploration"), the head's potential
// overrun (timeout D) must fit inside the downstream layers' compression
// headroom (resilience R, Insight-3), and the head weight W calibrates the
// local objective against the whole-workflow objective (Insight-4).
//
// Downstream allocations at P99 are a classic budget-split problem solved
// once per cone by dynamic programming over (layer suffix, budget in ms);
// the DP also tracks each solution's total resilience so the Eq. 6 check
// is O(1). Among downstream plans of equal total cost the DP keeps the one
// with the largest total resilience: Algorithm 1's generate() picks an
// arbitrary minimum-resource plan, and preferring the most resilient of
// them maximizes the head's exploration room at no extra cost (a
// deterministic strengthening of the paper's pseudo-code).
package synth

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"janus/internal/hints"
	"janus/internal/profile"
)

// Mode selects the percentile exploration strategy.
type Mode int

const (
	// ModeJanus explores diverse percentiles for the head function only.
	ModeJanus Mode = iota
	// ModeJanusMinus fixes every function at P99 (the ablation the paper
	// calls Janus-).
	ModeJanusMinus
	// ModeJanusPlus extends exploration to the head and the next-to-head
	// function (Janus+): slightly better plans at a much higher synthesis
	// cost (§V-C).
	ModeJanusPlus
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeJanus:
		return "janus"
	case ModeJanusMinus:
		return "janus-"
	case ModeJanusPlus:
		return "janus+"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a Synthesizer.
type Config struct {
	// Profiles is the workflow's per-group profile set at one batch size.
	Profiles *profile.Set
	// Weight is the head-function weight W (Insight-4); default 1.
	Weight float64
	// Mode selects Janus / Janus- / Janus+.
	Mode Mode
	// BudgetStepMs is the budget sweep granularity; default 1 ms (the
	// paper's "finer granularity in milliseconds").
	BudgetStepMs int
	// BudgetOverrideMs optionally replaces the Eq. 3 range for the whole
	// workflow (group 0's cone), as the paper does per-testbed (§V-F).
	// Zero values mean "use Eq. 3".
	BudgetOverrideMs [2]int
	// BudgetFloorMs optionally extends every cone's exploration range
	// downward to this floor (in ms). Online regeneration sets it to the
	// smallest remaining budget the adapter observed, so a bundle
	// re-synthesized under drifted traffic covers the tight budgets the
	// deployed one was missing on; budgets below the cone's minimum
	// feasible latency still yield no hint. Zero means no extension.
	BudgetFloorMs int
	// Parallelism bounds the worker goroutines sweeping budgets; default
	// GOMAXPROCS.
	Parallelism int
}

// Synthesizer generates hints for one (workflow, batch, weight, mode).
type Synthesizer struct {
	cfg Config
	set *profile.Set
	// programs holds one budget-split program per decision group, each
	// over the group's layered descendant cone.
	programs []*coneProgram
	// shaped holds one variant program per (group, resolved shape) of a
	// dynamic workflow: the group's cone with its head swapped for the
	// width-variant composite. Downstream layers — futures unresolved at
	// the decision instant — keep the conservative base, so every
	// variant shares the base program's P99 DP.
	shaped map[int]map[string]*coneProgram
}

// coneProgram is the Algorithm 1 machinery for one decision group's cone:
// the layered profile sequence (head first) plus the downstream P99 DP.
type coneProgram struct {
	cfg      Config
	profiles []*profile.FunctionProfile
	levels   []int
	kmax     int
	// tmin/tmax are the cone's Eq. 3 exploration bounds, computed once
	// from the layered profile sequence.
	tmin, tmax int
	maxMs      int
	// dp[j][t]: minimal total millicores provisioning layers j.. within
	// budget t ms, all at P99; -1 when infeasible.
	dp [][]int32
	// choiceIdx[j][t]: grid index of layer j's allocation in dp's optimum.
	choiceIdx [][]int16
	// resil[j][t]: total resilience (ms) sum_i R_i(99, k_i) of dp's
	// optimal plan for layers j.. at budget t.
	resil [][]int32
}

// Result carries a generated bundle plus the bookkeeping the evaluation
// reports: per-cone raw hint counts (pre-condensing), condensed counts,
// and wall-clock synthesis time (Fig 6b, Fig 8).
type Result struct {
	Bundle          *hints.Bundle
	RawCounts       []int
	CondensedCounts []int
	Elapsed         time.Duration
}

// New validates the configuration and precomputes the per-cone downstream
// DPs.
func New(cfg Config) (*Synthesizer, error) {
	if cfg.Profiles == nil || cfg.Profiles.Len() == 0 {
		return nil, fmt.Errorf("synth: profiles required")
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("synth: negative weight %v", cfg.Weight)
	}
	if cfg.BudgetStepMs == 0 {
		cfg.BudgetStepMs = 1
	}
	if cfg.BudgetStepMs < 0 {
		return nil, fmt.Errorf("synth: negative budget step")
	}
	if cfg.Mode != ModeJanus && cfg.Mode != ModeJanusMinus && cfg.Mode != ModeJanusPlus {
		return nil, fmt.Errorf("synth: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.BudgetOverrideMs[0] < 0 || cfg.BudgetOverrideMs[1] < cfg.BudgetOverrideMs[0] {
		return nil, fmt.Errorf("synth: invalid budget override %v", cfg.BudgetOverrideMs)
	}
	if cfg.BudgetFloorMs < 0 {
		return nil, fmt.Errorf("synth: negative budget floor %d", cfg.BudgetFloorMs)
	}
	set := cfg.Profiles
	grid := set.At(0).Grid
	for i := 1; i < set.Len(); i++ {
		if set.At(i).Grid != grid {
			return nil, fmt.Errorf("synth: group %d uses a different grid", i)
		}
	}
	s := &Synthesizer{cfg: cfg, set: set}
	for g := 0; g < set.Len(); g++ {
		seq, err := set.ConeProfiles(g)
		if err != nil {
			return nil, err
		}
		// The cone's Eq. 3 bounds, from the layered sequence itself (the
		// same sums Set.BudgetRangeMs computes, without re-deriving the
		// cone): Tmin = sum L(pMin, Kmax), Tmax = sum L(99, Kmin).
		tmin, tmax := 0, 0
		for _, fp := range seq {
			tmin += fp.LMs(fp.Percentiles[0], grid.Max)
			tmax += fp.LMs(99, grid.Min)
		}
		maxMs := tmax
		if g == 0 && cfg.BudgetOverrideMs[1] > maxMs {
			maxMs = cfg.BudgetOverrideMs[1]
		}
		p := &coneProgram{
			cfg:      cfg,
			profiles: seq,
			levels:   grid.Levels(),
			kmax:     grid.Max,
			tmin:     tmin,
			tmax:     tmax,
			maxMs:    maxMs,
		}
		p.buildDP()
		s.programs = append(s.programs, p)
	}
	for g, variants := range set.Shaped {
		if g < 0 || g >= set.Len() {
			return nil, fmt.Errorf("synth: shaped profiles for group %d, but workflow has %d groups", g, set.Len())
		}
		for shape, fp := range variants {
			if fp == nil {
				return nil, fmt.Errorf("synth: group %d shape %q profile missing", g, shape)
			}
			if fp.Grid != grid {
				return nil, fmt.Errorf("synth: group %d shape %q uses a different grid", g, shape)
			}
			if s.shaped == nil {
				s.shaped = map[int]map[string]*coneProgram{}
			}
			if s.shaped[g] == nil {
				s.shaped[g] = map[string]*coneProgram{}
			}
			s.shaped[g][shape] = variantProgram(s.programs[g], fp)
		}
	}
	return s, nil
}

// variantProgram derives the budget-split program of one resolved shape
// from the group's base program: the head profile is swapped for the
// shape variant and the Eq. 3 bounds recomputed, while the downstream
// layers — and therefore the P99 DP, which never reads the head — are
// shared with the base. The sweep stays clamped to the base's table
// width, which is safe because a resolved shape can only shrink the head
// (a prefix max over fewer replicas), never outgrow the worst case.
func variantProgram(base *coneProgram, head *profile.FunctionProfile) *coneProgram {
	seq := append([]*profile.FunctionProfile(nil), base.profiles...)
	seq[0] = head
	tmin, tmax := 0, 0
	for _, fp := range seq {
		tmin += fp.LMs(fp.Percentiles[0], fp.Grid.Max)
		tmax += fp.LMs(99, fp.Grid.Min)
	}
	if tmax > base.maxMs {
		tmax = base.maxMs
	}
	return &coneProgram{
		cfg:       base.cfg,
		profiles:  seq,
		levels:    base.levels,
		kmax:      base.kmax,
		tmin:      tmin,
		tmax:      tmax,
		maxMs:     base.maxMs,
		dp:        base.dp,
		choiceIdx: base.choiceIdx,
		resil:     base.resil,
	}
}

// buildDP fills dp/choiceIdx/resil bottom-up over the cone's layer
// suffixes.
func (p *coneProgram) buildDP() {
	n := len(p.profiles)
	p.dp = make([][]int32, n+1)
	p.choiceIdx = make([][]int16, n+1)
	p.resil = make([][]int32, n+1)
	width := p.maxMs + 1
	p.dp[n] = make([]int32, width) // all zero: nothing left to provision
	p.resil[n] = make([]int32, width)
	for j := n - 1; j >= 0; j-- {
		fp := p.profiles[j]
		p.dp[j] = make([]int32, width)
		p.choiceIdx[j] = make([]int16, width)
		p.resil[j] = make([]int32, width)
		l99 := make([]int, len(p.levels))
		for ki, k := range p.levels {
			l99[ki] = fp.LMs(99, k)
		}
		l99AtMax := l99[len(l99)-1]
		for t := 0; t < width; t++ {
			best := int32(-1)
			bestKi := int16(-1)
			var bestRes int32
			for ki := len(p.levels) - 1; ki >= 0; ki-- {
				lat := l99[ki]
				if lat > t {
					break // latencies grow as ki shrinks; nothing smaller fits
				}
				down := p.dp[j+1][t-lat]
				if down < 0 {
					continue
				}
				cand := int32(p.levels[ki]) + down
				candRes := int32(lat-l99AtMax) + p.resil[j+1][t-lat]
				if best < 0 || cand < best || (cand == best && candRes > bestRes) {
					best = cand
					bestKi = int16(ki)
					bestRes = candRes
				}
			}
			p.dp[j][t] = best
			p.choiceIdx[j][t] = bestKi
			p.resil[j][t] = bestRes
		}
	}
}

// planP99 materializes the DP's optimal P99 allocation for layers j.. at
// budget tMs into dst (which must have capacity for the suffix length).
func (p *coneProgram) planP99(j, tMs int, dst []int) []int {
	dst = dst[:0]
	for layer := j; layer < len(p.profiles); layer++ {
		ki := p.choiceIdx[layer][tMs]
		if ki < 0 {
			panic(fmt.Sprintf("synth: planP99 called on infeasible state (%d, %d)", layer, tMs))
		}
		k := p.levels[ki]
		dst = append(dst, k)
		tMs -= p.profiles[layer].LMs(99, k)
	}
	return dst
}

// candidate is one feasible head decision during generation.
type candidate struct {
	cost float64
	p    int
	k    int
	// downBudgetMs is the budget handed to the downstream DP (or -1 for
	// single-layer cones).
	downBudgetMs int
	// secondP/secondK record the Janus+ next-to-head exploration.
	secondP, secondK  int
	secondDownBudget  int
	secondExploration bool
}

// better orders candidates: lower cost wins; ties prefer the safer (higher)
// percentile, then the smaller head allocation — a total, deterministic
// order.
func (c candidate) better(o candidate) bool {
	const eps = 1e-9
	if c.cost < o.cost-eps {
		return true
	}
	if c.cost > o.cost+eps {
		return false
	}
	if c.p != o.p {
		return c.p > o.p
	}
	return c.k < o.k
}

// GenerateSuffix runs Algorithm 1 for the sub-workflow headed by decision
// group `suffix` (its descendant cone), sweeping the budget range at the
// configured step. The name is kept from the chain era: for a chain the
// cone of group i is exactly the node suffix i.. of the chain.
func (s *Synthesizer) GenerateSuffix(suffix int) (*hints.RawTable, error) {
	if suffix < 0 || suffix >= s.set.Len() {
		return nil, fmt.Errorf("synth: suffix %d out of range [0, %d)", suffix, s.set.Len())
	}
	return s.generateTable(s.programs[suffix], suffix)
}

// generateTable sweeps one cone program's budget range — base or shape
// variant — into a raw table carrying the given suffix index.
func (s *Synthesizer) generateTable(prog *coneProgram, suffix int) (*hints.RawTable, error) {
	tmin, tmax := prog.tmin, prog.tmax
	if suffix == 0 && s.cfg.BudgetOverrideMs != [2]int{} {
		tmin, tmax = s.cfg.BudgetOverrideMs[0], s.cfg.BudgetOverrideMs[1]
	}
	if tmax > prog.maxMs {
		tmax = prog.maxMs
	}
	step := s.cfg.BudgetStepMs
	var budgets []int
	if floor := s.cfg.BudgetFloorMs; floor > 0 && floor < tmin {
		// Extend the sweep downward to the observed floor, anchored at
		// tmin so every original budget stays on the grid: the floor adds
		// coverage below the original minimum without re-pricing above
		// it. The step count rounds up so the first extended budget lands
		// at or below the floor — a floor inside the last step would
		// otherwise stay uncovered and keep missing after the swap.
		k := (tmin - floor + step - 1) / step
		for t := tmin - k*step; t < tmin; t += step {
			if t < 1 {
				continue
			}
			budgets = append(budgets, t)
		}
	}
	for t := tmin; t <= tmax; t += step {
		budgets = append(budgets, t)
	}
	out := make([]*hints.Hint, len(budgets))
	var wg sync.WaitGroup
	workers := s.cfg.Parallelism
	if workers > len(budgets) {
		workers = len(budgets)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(budgets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(budgets) {
			hi = len(budgets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			planBuf := make([]int, 0, len(prog.profiles))
			for i := lo; i < hi; i++ {
				out[i] = prog.generateOne(budgets[i], planBuf)
			}
		}(lo, hi)
	}
	wg.Wait()
	rt := &hints.RawTable{Suffix: suffix, Weight: s.cfg.Weight}
	for _, h := range out {
		if h != nil {
			rt.Hints = append(rt.Hints, *h)
		}
	}
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	return rt, nil
}

// generateOne solves the Eq. 4-8 program for the cone at one budget.
func (p *coneProgram) generateOne(tMs int, planBuf []int) *hints.Hint {
	head := p.profiles[0]
	nRem := len(p.profiles)
	// Single-layer cone: min_resource at P99 — there is no downstream
	// resilience to absorb a timeout.
	if nRem == 1 {
		k, ok := head.MinCoresWithin(99, time.Duration(tMs)*time.Millisecond)
		if !ok {
			return nil
		}
		return &hints.Hint{
			BudgetMs:       tMs,
			HeadMillicores: k,
			HeadPercentile: 99,
			PlanMillicores: []int{k},
			ExpectedCost:   p.cfg.Weight * float64(k),
		}
	}
	best := candidate{cost: -1}
	for _, pct := range p.headPercentiles(tMs) {
		for _, k := range p.levels {
			downBudget := tMs - head.LMs(pct, k)
			if downBudget < 0 {
				continue
			}
			if p.cfg.Mode == ModeJanusPlus && nRem >= 3 {
				if c, ok := p.exploreSecond(pct, k, downBudget); ok {
					if best.cost < 0 || c.better(best) {
						best = c
					}
				}
				continue
			}
			down := p.dp[1][downBudget]
			if down < 0 {
				continue
			}
			if int32(head.TimeoutMs(pct, k)) > p.resil[1][downBudget] {
				continue // Eq. 6: downstream cannot absorb the overrun
			}
			pf := float64(pct) / 100
			cost := p.cfg.Weight*float64(k) + pf*float64(down) + (1-pf)*float64(nRem-1)*float64(p.kmax)
			c := candidate{cost: cost, p: pct, k: k, downBudgetMs: downBudget}
			if best.cost < 0 || c.better(best) {
				best = c
			}
		}
	}
	if best.cost < 0 {
		return nil
	}
	plan := []int{best.k}
	if best.secondExploration {
		plan = append(plan, best.secondK)
		plan = append(plan, p.planP99(2, best.secondDownBudget, planBuf)...)
	} else if best.downBudgetMs >= 0 {
		plan = append(plan, p.planP99(1, best.downBudgetMs, planBuf)...)
	}
	return &hints.Hint{
		BudgetMs:       tMs,
		HeadMillicores: best.k,
		HeadPercentile: best.p,
		PlanMillicores: plan,
		ExpectedCost:   best.cost,
	}
}

// headPercentiles implements explore_percentile: the candidate percentiles
// whose Kmax execution keeps the cone within the budget.
func (p *coneProgram) headPercentiles(tMs int) []int {
	head := p.profiles[0]
	if p.cfg.Mode == ModeJanusMinus {
		if head.LMs(99, p.kmax)+p.downKmaxMs(1) <= tMs {
			return []int{99}
		}
		return nil
	}
	downMs := p.downKmaxMs(1)
	var out []int
	for _, pct := range head.Percentiles {
		if head.LMs(pct, p.kmax)+downMs <= tMs {
			out = append(out, pct)
		}
	}
	return out
}

// downKmaxMs is the P99 execution time of layers from.. with every layer
// at Kmax — the floor the percentile filter compares against.
func (p *coneProgram) downKmaxMs(from int) int {
	total := 0
	for j := from; j < len(p.profiles); j++ {
		total += p.profiles[j].LMs(99, p.kmax)
	}
	return total
}

// exploreSecond is the Janus+ extension: the next-to-head layer also
// explores percentiles. The head's timeout must fit in the second layer's
// own resilience plus the rest's; the second's timeout must fit in the
// rest's.
func (p *coneProgram) exploreSecond(p1, k1, budget1 int) (candidate, bool) {
	second := p.profiles[1]
	head := p.profiles[0]
	nRem := len(p.profiles)
	best := candidate{cost: -1}
	for _, p2 := range second.Percentiles {
		for _, k2 := range p.levels {
			restBudget := budget1 - second.LMs(p2, k2)
			if restBudget < 0 {
				continue
			}
			rest := p.dp[2][restBudget]
			if rest < 0 {
				continue
			}
			restRes := p.resil[2][restBudget]
			if int32(second.TimeoutMs(p2, k2)) > restRes {
				continue
			}
			secondRes := int32(second.LMs(p2, k2) - second.LMs(p2, p.kmax))
			if int32(head.TimeoutMs(p1, k1)) > secondRes+restRes {
				continue
			}
			pf1 := float64(p1) / 100
			pf2 := float64(p2) / 100
			inner := float64(k2) + pf2*float64(rest) + (1-pf2)*float64(nRem-2)*float64(p.kmax)
			cost := p.cfg.Weight*float64(k1) + pf1*inner + (1-pf1)*float64(nRem-1)*float64(p.kmax)
			c := candidate{
				cost: cost, p: p1, k: k1,
				secondP: p2, secondK: k2, secondDownBudget: restBudget,
				secondExploration: true,
			}
			if best.cost < 0 || c.better(best) {
				best = c
			}
		}
	}
	return best, best.cost >= 0
}

// GenerateBundle generates and condenses tables for every decision group's
// cone.
func (s *Synthesizer) GenerateBundle() (*Result, error) {
	start := time.Now()
	n := s.set.Len()
	res := &Result{
		Bundle: &hints.Bundle{
			Workflow:      s.set.Workflow.Name(),
			Batch:         s.set.Batch,
			Weight:        s.cfg.Weight,
			SLOMs:         int(s.set.Workflow.SLO() / time.Millisecond),
			MaxMillicores: s.set.At(0).Grid.Max,
		},
	}
	for i := 0; i < n; i++ {
		raw, err := s.GenerateSuffix(i)
		if err != nil {
			return nil, err
		}
		tab, err := hints.Condense(raw)
		if err != nil {
			return nil, err
		}
		tab.Workflow = s.set.Workflow.Name()
		tab.Batch = s.set.Batch
		res.Bundle.Tables = append(res.Bundle.Tables, tab)
		res.RawCounts = append(res.RawCounts, len(raw.Hints))
		res.CondensedCounts = append(res.CondensedCounts, tab.Size())
	}
	for g, variants := range s.shaped {
		for shape, prog := range variants {
			raw, err := s.generateTable(prog, g)
			if err != nil {
				return nil, err
			}
			tab, err := hints.Condense(raw)
			if err != nil {
				return nil, err
			}
			tab.Workflow = s.set.Workflow.Name()
			tab.Batch = s.set.Batch
			if res.Bundle.Shaped == nil {
				res.Bundle.Shaped = map[int]map[string]*hints.Table{}
			}
			if res.Bundle.Shaped[g] == nil {
				res.Bundle.Shaped[g] = map[string]*hints.Table{}
			}
			res.Bundle.Shaped[g][shape] = tab
		}
	}
	if err := res.Bundle.Validate(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
