// Package synth implements Janus's Synthesizer (§IV): offline generation of
// hints tables (Algorithm 1) followed by condensing (Algorithm 2, in
// package hints).
//
// For every sub-workflow suffix and every candidate time budget t (explored
// at millisecond granularity across the Eq. 3 range), the synthesizer
// solves
//
//	min  W*k1 + (p/100)*sum(ki) + (1-p/100)*(N-1)*Kmax      (Eq. 4)
//	s.t. L1(p, k1) + sum Li(99, ki) <= t                     (Eq. 5)
//	     D1(p, k1) <= sum Ri(99, ki)                         (Eq. 6)
//
// where only the head function explores percentiles below 99 (Insight-2,
// "moderate percentile exploration"), the head's potential overrun (timeout
// D) must fit inside the downstream functions' compression headroom
// (resilience R, Insight-3), and the head weight W calibrates the local
// objective against the whole-workflow objective (Insight-4).
//
// Downstream allocations at P99 are a classic budget-split problem solved
// once by dynamic programming over (stage suffix, budget in ms); the DP
// also tracks each solution's total resilience so the Eq. 6 check is O(1).
// Among downstream plans of equal total cost the DP keeps the one with the
// largest total resilience: Algorithm 1's generate() picks an arbitrary
// minimum-resource plan, and preferring the most resilient of them
// maximizes the head's exploration room at no extra cost (a deterministic
// strengthening of the paper's pseudo-code).
package synth

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"janus/internal/hints"
	"janus/internal/profile"
)

// Mode selects the percentile exploration strategy.
type Mode int

const (
	// ModeJanus explores diverse percentiles for the head function only.
	ModeJanus Mode = iota
	// ModeJanusMinus fixes every function at P99 (the ablation the paper
	// calls Janus-).
	ModeJanusMinus
	// ModeJanusPlus extends exploration to the head and the next-to-head
	// function (Janus+): slightly better plans at a much higher synthesis
	// cost (§V-C).
	ModeJanusPlus
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeJanus:
		return "janus"
	case ModeJanusMinus:
		return "janus-"
	case ModeJanusPlus:
		return "janus+"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a Synthesizer.
type Config struct {
	// Profiles is the workflow's profile set at one batch size.
	Profiles *profile.Set
	// Weight is the head-function weight W (Insight-4); default 1.
	Weight float64
	// Mode selects Janus / Janus- / Janus+.
	Mode Mode
	// BudgetStepMs is the budget sweep granularity; default 1 ms (the
	// paper's "finer granularity in milliseconds").
	BudgetStepMs int
	// BudgetOverrideMs optionally replaces the Eq. 3 range for the whole
	// workflow (suffix 0), as the paper does per-testbed (§V-F). Zero
	// values mean "use Eq. 3".
	BudgetOverrideMs [2]int
	// Parallelism bounds the worker goroutines sweeping budgets; default
	// GOMAXPROCS.
	Parallelism int
}

// Synthesizer generates hints for one (workflow, batch, weight, mode).
type Synthesizer struct {
	cfg    Config
	set    *profile.Set
	levels []int
	kmax   int
	maxMs  int
	// dp[j][t]: minimal total millicores provisioning stages j.. within
	// budget t ms, all at P99; -1 when infeasible.
	dp [][]int32
	// choiceIdx[j][t]: grid index of stage j's allocation in dp's optimum.
	choiceIdx [][]int16
	// resil[j][t]: total resilience (ms) sum_i R_i(99, k_i) of dp's
	// optimal plan for stages j.. at budget t.
	resil [][]int32
}

// Result carries a generated bundle plus the bookkeeping the evaluation
// reports: per-suffix raw hint counts (pre-condensing), condensed counts,
// and wall-clock synthesis time (Fig 6b, Fig 8).
type Result struct {
	Bundle          *hints.Bundle
	RawCounts       []int
	CondensedCounts []int
	Elapsed         time.Duration
}

// New validates the configuration and precomputes the downstream DP.
func New(cfg Config) (*Synthesizer, error) {
	if cfg.Profiles == nil || cfg.Profiles.Len() == 0 {
		return nil, fmt.Errorf("synth: profiles required")
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("synth: negative weight %v", cfg.Weight)
	}
	if cfg.BudgetStepMs == 0 {
		cfg.BudgetStepMs = 1
	}
	if cfg.BudgetStepMs < 0 {
		return nil, fmt.Errorf("synth: negative budget step")
	}
	if cfg.Mode != ModeJanus && cfg.Mode != ModeJanusMinus && cfg.Mode != ModeJanusPlus {
		return nil, fmt.Errorf("synth: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.BudgetOverrideMs[0] < 0 || cfg.BudgetOverrideMs[1] < cfg.BudgetOverrideMs[0] {
		return nil, fmt.Errorf("synth: invalid budget override %v", cfg.BudgetOverrideMs)
	}
	set := cfg.Profiles
	grid := set.At(0).Grid
	for i := 1; i < set.Len(); i++ {
		if set.At(i).Grid != grid {
			return nil, fmt.Errorf("synth: stage %d uses a different grid", i)
		}
	}
	_, tmax := set.BudgetRangeMs(0)
	maxMs := tmax
	if cfg.BudgetOverrideMs[1] > maxMs {
		maxMs = cfg.BudgetOverrideMs[1]
	}
	s := &Synthesizer{
		cfg:    cfg,
		set:    set,
		levels: grid.Levels(),
		kmax:   grid.Max,
		maxMs:  maxMs,
	}
	s.buildDP()
	return s, nil
}

// buildDP fills dp/choiceIdx/resil bottom-up over suffixes.
func (s *Synthesizer) buildDP() {
	n := s.set.Len()
	s.dp = make([][]int32, n+1)
	s.choiceIdx = make([][]int16, n+1)
	s.resil = make([][]int32, n+1)
	width := s.maxMs + 1
	s.dp[n] = make([]int32, width) // all zero: nothing left to provision
	s.resil[n] = make([]int32, width)
	for j := n - 1; j >= 0; j-- {
		fp := s.set.At(j)
		s.dp[j] = make([]int32, width)
		s.choiceIdx[j] = make([]int16, width)
		s.resil[j] = make([]int32, width)
		l99 := make([]int, len(s.levels))
		for ki, k := range s.levels {
			l99[ki] = fp.LMs(99, k)
		}
		l99AtMax := l99[len(l99)-1]
		for t := 0; t < width; t++ {
			best := int32(-1)
			bestKi := int16(-1)
			var bestRes int32
			for ki := len(s.levels) - 1; ki >= 0; ki-- {
				lat := l99[ki]
				if lat > t {
					break // latencies grow as ki shrinks; nothing smaller fits
				}
				down := s.dp[j+1][t-lat]
				if down < 0 {
					continue
				}
				cand := int32(s.levels[ki]) + down
				candRes := int32(lat-l99AtMax) + s.resil[j+1][t-lat]
				if best < 0 || cand < best || (cand == best && candRes > bestRes) {
					best = cand
					bestKi = int16(ki)
					bestRes = candRes
				}
			}
			s.dp[j][t] = best
			s.choiceIdx[j][t] = bestKi
			s.resil[j][t] = bestRes
		}
	}
}

// planP99 materializes the DP's optimal P99 allocation for stages j.. at
// budget tMs into dst (which must have capacity for the suffix length).
func (s *Synthesizer) planP99(j, tMs int, dst []int) []int {
	dst = dst[:0]
	for stage := j; stage < s.set.Len(); stage++ {
		ki := s.choiceIdx[stage][tMs]
		if ki < 0 {
			panic(fmt.Sprintf("synth: planP99 called on infeasible state (%d, %d)", stage, tMs))
		}
		k := s.levels[ki]
		dst = append(dst, k)
		tMs -= s.set.At(stage).LMs(99, k)
	}
	return dst
}

// candidate is one feasible head decision during generation.
type candidate struct {
	cost float64
	p    int
	k    int
	// downBudgetMs is the budget handed to the downstream DP (or -1 for
	// single-function suffixes).
	downBudgetMs int
	// secondP/secondK record the Janus+ next-to-head exploration.
	secondP, secondK  int
	secondDownBudget  int
	secondExploration bool
}

// better orders candidates: lower cost wins; ties prefer the safer (higher)
// percentile, then the smaller head allocation — a total, deterministic
// order.
func (c candidate) better(o candidate) bool {
	const eps = 1e-9
	if c.cost < o.cost-eps {
		return true
	}
	if c.cost > o.cost+eps {
		return false
	}
	if c.p != o.p {
		return c.p > o.p
	}
	return c.k < o.k
}

// GenerateSuffix runs Algorithm 1 for one sub-workflow suffix, sweeping the
// budget range at the configured step.
func (s *Synthesizer) GenerateSuffix(suffix int) (*hints.RawTable, error) {
	if suffix < 0 || suffix >= s.set.Len() {
		return nil, fmt.Errorf("synth: suffix %d out of range [0, %d)", suffix, s.set.Len())
	}
	tmin, tmax := s.set.BudgetRangeMs(suffix)
	if suffix == 0 && s.cfg.BudgetOverrideMs != [2]int{} {
		tmin, tmax = s.cfg.BudgetOverrideMs[0], s.cfg.BudgetOverrideMs[1]
	}
	if tmax > s.maxMs {
		tmax = s.maxMs
	}
	step := s.cfg.BudgetStepMs
	var budgets []int
	for t := tmin; t <= tmax; t += step {
		budgets = append(budgets, t)
	}
	out := make([]*hints.Hint, len(budgets))
	var wg sync.WaitGroup
	workers := s.cfg.Parallelism
	if workers > len(budgets) {
		workers = len(budgets)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(budgets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(budgets) {
			hi = len(budgets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			planBuf := make([]int, 0, s.set.Len())
			for i := lo; i < hi; i++ {
				out[i] = s.generateOne(suffix, budgets[i], planBuf)
			}
		}(lo, hi)
	}
	wg.Wait()
	rt := &hints.RawTable{Suffix: suffix, Weight: s.cfg.Weight}
	for _, h := range out {
		if h != nil {
			rt.Hints = append(rt.Hints, *h)
		}
	}
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	return rt, nil
}

// generateOne solves the Eq. 4-8 program for one (suffix, budget).
func (s *Synthesizer) generateOne(suffix, tMs int, planBuf []int) *hints.Hint {
	head := s.set.At(suffix)
	nRem := s.set.Len() - suffix
	// Single-function sub-workflow: min_resource at P99 — there is no
	// downstream resilience to absorb a timeout.
	if nRem == 1 {
		k, ok := head.MinCoresWithin(99, time.Duration(tMs)*time.Millisecond)
		if !ok {
			return nil
		}
		return &hints.Hint{
			BudgetMs:       tMs,
			HeadMillicores: k,
			HeadPercentile: 99,
			PlanMillicores: []int{k},
			ExpectedCost:   s.cfg.Weight * float64(k),
		}
	}
	best := candidate{cost: -1}
	for _, p := range s.headPercentiles(suffix, tMs) {
		for _, k := range s.levels {
			downBudget := tMs - head.LMs(p, k)
			if downBudget < 0 {
				continue
			}
			if s.cfg.Mode == ModeJanusPlus && nRem >= 3 {
				if c, ok := s.exploreSecond(suffix, p, k, downBudget); ok {
					if best.cost < 0 || c.better(best) {
						best = c
					}
				}
				continue
			}
			down := s.dp[suffix+1][downBudget]
			if down < 0 {
				continue
			}
			if int32(head.TimeoutMs(p, k)) > s.resil[suffix+1][downBudget] {
				continue // Eq. 6: downstream cannot absorb the overrun
			}
			pf := float64(p) / 100
			cost := s.cfg.Weight*float64(k) + pf*float64(down) + (1-pf)*float64(nRem-1)*float64(s.kmax)
			c := candidate{cost: cost, p: p, k: k, downBudgetMs: downBudget}
			if best.cost < 0 || c.better(best) {
				best = c
			}
		}
	}
	if best.cost < 0 {
		return nil
	}
	plan := []int{best.k}
	if best.secondExploration {
		plan = append(plan, best.secondK)
		plan = append(plan, s.planP99(suffix+2, best.secondDownBudget, planBuf)...)
	} else if best.downBudgetMs >= 0 {
		plan = append(plan, s.planP99(suffix+1, best.downBudgetMs, planBuf)...)
	}
	return &hints.Hint{
		BudgetMs:       tMs,
		HeadMillicores: best.k,
		HeadPercentile: best.p,
		PlanMillicores: plan,
		ExpectedCost:   best.cost,
	}
}

// headPercentiles implements explore_percentile: the candidate percentiles
// whose Kmax execution keeps the sub-workflow within the budget.
func (s *Synthesizer) headPercentiles(suffix, tMs int) []int {
	head := s.set.At(suffix)
	if s.cfg.Mode == ModeJanusMinus {
		if head.LMs(99, s.kmax)+s.downKmaxMs(suffix+1) <= tMs {
			return []int{99}
		}
		return nil
	}
	downMs := s.downKmaxMs(suffix + 1)
	var out []int
	for _, p := range head.Percentiles {
		if head.LMs(p, s.kmax)+downMs <= tMs {
			out = append(out, p)
		}
	}
	return out
}

// downKmaxMs is the P99 execution time of stages from.. with every function
// at Kmax — the floor the percentile filter compares against.
func (s *Synthesizer) downKmaxMs(from int) int {
	total := 0
	for j := from; j < s.set.Len(); j++ {
		total += s.set.At(j).LMs(99, s.kmax)
	}
	return total
}

// exploreSecond is the Janus+ extension: the next-to-head function also
// explores percentiles. The head's timeout must fit in the second
// function's own resilience plus the rest's; the second's timeout must fit
// in the rest's.
func (s *Synthesizer) exploreSecond(suffix, p1, k1, budget1 int) (candidate, bool) {
	second := s.set.At(suffix + 1)
	head := s.set.At(suffix)
	nRem := s.set.Len() - suffix
	best := candidate{cost: -1}
	for _, p2 := range second.Percentiles {
		for _, k2 := range s.levels {
			restBudget := budget1 - second.LMs(p2, k2)
			if restBudget < 0 {
				continue
			}
			rest := s.dp[suffix+2][restBudget]
			if rest < 0 {
				continue
			}
			restRes := s.resil[suffix+2][restBudget]
			if int32(second.TimeoutMs(p2, k2)) > restRes {
				continue
			}
			secondRes := int32(second.LMs(p2, k2) - second.LMs(p2, s.kmax))
			if int32(head.TimeoutMs(p1, k1)) > secondRes+restRes {
				continue
			}
			pf1 := float64(p1) / 100
			pf2 := float64(p2) / 100
			inner := float64(k2) + pf2*float64(rest) + (1-pf2)*float64(nRem-2)*float64(s.kmax)
			cost := s.cfg.Weight*float64(k1) + pf1*inner + (1-pf1)*float64(nRem-1)*float64(s.kmax)
			c := candidate{
				cost: cost, p: p1, k: k1,
				secondP: p2, secondK: k2, secondDownBudget: restBudget,
				secondExploration: true,
			}
			if best.cost < 0 || c.better(best) {
				best = c
			}
		}
	}
	return best, best.cost >= 0
}

// GenerateBundle generates and condenses tables for every suffix.
func (s *Synthesizer) GenerateBundle() (*Result, error) {
	start := time.Now()
	n := s.set.Len()
	res := &Result{
		Bundle: &hints.Bundle{
			Workflow:      s.set.Workflow.Name(),
			Batch:         s.set.Batch,
			Weight:        s.cfg.Weight,
			SLOMs:         int(s.set.Workflow.SLO() / time.Millisecond),
			MaxMillicores: s.kmax,
		},
	}
	for i := 0; i < n; i++ {
		raw, err := s.GenerateSuffix(i)
		if err != nil {
			return nil, err
		}
		tab, err := hints.Condense(raw)
		if err != nil {
			return nil, err
		}
		tab.Workflow = s.set.Workflow.Name()
		tab.Batch = s.set.Batch
		res.Bundle.Tables = append(res.Bundle.Tables, tab)
		res.RawCounts = append(res.RawCounts, len(raw.Hints))
		res.CondensedCounts = append(res.CondensedCounts, tab.Size())
	}
	if err := res.Bundle.Validate(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
