package janus_test

import (
	"fmt"
	"log"
	"time"

	"janus"
)

// ExampleNewChain defines the paper's intelligent-assistant application as
// a chain workflow: object detection, question answering, text-to-speech,
// under a 3 s end-to-end SLO.
func ExampleNewChain() {
	w, err := janus.NewChain("assistant", 3*time.Second, "od", "qa", "ts")
	if err != nil {
		log.Fatal(err)
	}
	chain, err := w.Chain()
	if err != nil {
		log.Fatal(err)
	}
	for _, node := range chain {
		fmt.Println(node.Function)
	}
	fmt.Println("SLO:", w.SLO())
	// Output:
	// od
	// qa
	// ts
	// SLO: 3s
}

// ExampleDeploy runs the developer-side offline pipeline — profiling,
// hints synthesis, condensing — and asks the provider-side adapter for a
// decision, exactly as the README quickstart does. The reduced sample
// count keeps the example fast; paper-scale runs use the defaults.
func ExampleDeploy() {
	w, err := janus.NewChain("assistant", 3*time.Second, "od", "qa", "ts")
	if err != nil {
		log.Fatal(err)
	}
	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             3,
		SamplesPerConfig: 400,
		BudgetStepMs:     25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stages:", dep.Bundle().Stages())
	// A fresh request has its whole SLO as remaining budget: ask the
	// adapter how large the first function's pod should be.
	d, err := dep.Adapter.Decide(0, w.SLO())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hit:", d.Hit)
	// Output:
	// stages: 3
	// hit: true
}

// ExampleGenerateWorkload materializes a request sequence with pre-sampled
// runtime conditions: every serving system replays the identical draws,
// which is what makes the paper's system comparisons paired.
func ExampleGenerateWorkload() {
	w, err := janus.NewChain("assistant", 3*time.Second, "od", "qa", "ts")
	if err != nil {
		log.Fatal(err)
	}
	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow:          w,
		Functions:         janus.Catalog(),
		N:                 100,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      janus.DefaultInterference(),
		StageCorrelation:  0.5,
		Seed:              3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("requests:", len(reqs))
	fmt.Println("draws per request:", len(reqs[0].Draws))
	// Output:
	// requests: 100
	// draws per request: 3
}

// ExampleNewDAGWorkflow serves a genuinely non-series-parallel DAG end to
// end through the facade: a diamond with a cross edge — fetch fans out to
// a detector and a classifier, the detector also feeds an OCR pass, and
// everything joins at a fuse node. No stage decomposition exists for this
// shape; the node-granular engine starts each node the moment its
// predecessors finish, shares one allocation decision across the
// detect/classify fork, and makes one decision per decision group against
// the remaining budget via the hints table for that group's descendant
// cone.
func ExampleNewDAGWorkflow() {
	w, err := janus.NewDAGWorkflow("vision", 1300*time.Millisecond,
		[]janus.WorkflowNode{
			{Name: "fetch", Function: "fe"},
			{Name: "detect", Function: "icl"},
			{Name: "classify", Function: "ico"},
			{Name: "ocr", Function: "aes-encrypt"},
			{Name: "fuse", Function: "redis-read"},
		},
		[][2]string{
			{"fetch", "detect"}, {"fetch", "classify"},
			{"detect", "ocr"},
			{"detect", "fuse"}, {"classify", "fuse"}, {"ocr", "fuse"},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("series-parallel:", w.IsSeriesParallel())
	fmt.Println("decision groups:", len(w.DecisionGroups()))

	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	// Offline: profile each decision group, synthesize and condense one
	// hints table per group's descendant cone.
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             3,
		SamplesPerConfig: 400,
		BudgetStepMs:     25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hints tables:", dep.Bundle().Stages())

	// Online: serve pre-sampled requests under the adapter.
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow: w, Functions: janus.Catalog(), N: 40,
		ArrivalRatePerSec: 2, Colocation: coloc,
		Interference: janus.DefaultInterference(), StageCorrelation: 0.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	traces, err := ex.Run(reqs, dep.Allocator("janus"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("served:", len(traces))
	fmt.Println("nodes executed:", len(traces[0].Stages))
	fmt.Println("decisions:", traces[0].Decisions)
	// Output:
	// series-parallel: false
	// decision groups: 4
	// hints tables: 4
	// served: 40
	// nodes executed: 5
	// decisions: 4
}

// ExampleExecutor_RunMixed serves two tenants' workloads — each with its
// own allocator — as one merged arrival stream on one shared two-node
// cluster, then splits per-tenant metrics out of the mixed trace set.
func ExampleExecutor_RunMixed() {
	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	workload := func(w *janus.Workflow, seed uint64) []*janus.Request {
		reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
			Workflow: w, Functions: janus.Catalog(), N: 50, Batch: 1,
			ArrivalRatePerSec: 2, Colocation: coloc,
			Interference: janus.DefaultInterference(), StageCorrelation: 0.5, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return reqs
	}
	cfg := janus.DefaultExecutorConfig()
	cfg.Cluster = janus.ClusterConfig{
		Nodes: 2, NodeMillicores: 26000, PoolSize: 3, IdleMillicores: 100,
		Placement: janus.PlacementSpread,
	}
	ex, err := janus.NewExecutor(cfg, janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	byTenant, err := ex.RunMixed([]janus.TenantWorkload{
		{Tenant: "assistant", Requests: workload(janus.IntelligentAssistant(), 3),
			Allocator: &janus.FixedAllocator{System: "fixed", Sizes: []int{2000, 2000, 2000}}},
		{Tenant: "video", Requests: workload(janus.VideoAnalyze(), 4),
			Allocator: &janus.FixedAllocator{System: "fixed", Sizes: []int{1500, 1500, 1500}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tenant := range []string{"assistant", "video"} {
		traces := byTenant[tenant]
		fmt.Printf("%s: %d traces, tenant tag %q\n", tenant, len(traces), traces[0].Tenant)
	}
	// Output:
	// assistant: 50 traces, tenant tag "assistant"
	// video: 50 traces, tenant tag "video"
}

// ExampleExecutor_RunReplay serves a deterministic non-stationary arrival
// stream — a plateau, a burst, a diurnal cycle — under the elastic
// warm-pool autoscaler, on one virtual clock.
func ExampleExecutor_RunReplay() {
	sched, err := janus.NewReplaySchedule(7,
		janus.ReplayZipfMix("assistant"),
		janus.ReplayPlateau(10*time.Second, 2),
		janus.ReplayBurst(10*time.Second, 2, 8),
		janus.ReplayDiurnal(20*time.Second, 1, 4, 10*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := janus.ReplayTenantArrivalTimes(sched.Arrivals())
	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow: janus.IntelligentAssistant(), Functions: janus.Catalog(), Batch: 1,
		Arrivals: arrivals["assistant"], Colocation: coloc,
		Interference: janus.DefaultInterference(), StageCorrelation: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	scaler, err := janus.NewAutoscaler(janus.DefaultAutoscalerConfig())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	traces, metrics, err := ex.RunReplay(
		[]janus.TenantWorkload{{Requests: reqs,
			Allocator: &janus.FixedAllocator{System: "fixed", Sizes: []int{2000, 2000, 2000}}}},
		janus.ReplayConfig{Interval: 500 * time.Millisecond, Horizon: sched.Duration(), Controller: scaler},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests over %v with elastic pools (churn %d grown, %d shrunk)\n",
		len(traces[""]), sched.Duration(), metrics.PoolGrown, metrics.PoolShrunk)
	fmt.Printf("pod-seconds accounted: %t\n", metrics.PodSeconds > 0)
	// Output:
	// served 111 requests over 40s with elastic pools (churn 31 grown, 8 shrunk)
	// pod-seconds accounted: true
}
